// MaxSMT backend on Z3's Optimize engine (the paper's §7 setup: "We use the
// Z3 theorem prover's API to encode and solve our MaxSMT formulation").
// Soft constraints become assert_soft terms in a single objective group, so
// Z3 minimizes the total violated weight exactly.

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include <z3++.h>

#include "obs/metrics.h"
#include "obs/span.h"
#include "solver/backend.h"

namespace cpr {

namespace {

class Z3Translator {
 public:
  Z3Translator(z3::context* ctx, const ConstraintSystem& system)
      : ctx_(ctx), system_(&system), cache_(static_cast<size_t>(system.BoolCount()), -1) {
    bool_consts_.reserve(static_cast<size_t>(system.BoolCount()));
    for (BVarId v = 0; v < system.BoolCount(); ++v) {
      bool_consts_.push_back(ctx_->bool_const(system.BoolName(v).c_str()));
    }
    int_consts_.reserve(static_cast<size_t>(system.IntCount()));
    for (IVarId v = 0; v < system.IntCount(); ++v) {
      int_consts_.push_back(ctx_->int_const(system.IntVar(v).name.c_str()));
    }
  }

  // Re-points the translator at a structurally identical system (equal
  // HardFingerprint): the Z3 constants built in the constructor match the
  // new system's variables by position and name.
  void Rebind(const ConstraintSystem& system) { system_ = &system; }

  z3::expr Translate(ExprId id) {
    const ExprNode& n = system_->node(id);
    switch (n.kind) {
      case ExprKind::kTrue:
        return ctx_->bool_val(true);
      case ExprKind::kFalse:
        return ctx_->bool_val(false);
      case ExprKind::kBoolVar:
        return bool_consts_[static_cast<size_t>(n.bool_var)];
      case ExprKind::kNot:
        return !Translate(n.children[0]);
      case ExprKind::kAnd: {
        z3::expr_vector parts(*ctx_);
        for (ExprId c : n.children) {
          parts.push_back(Translate(c));
        }
        return z3::mk_and(parts);
      }
      case ExprKind::kOr: {
        z3::expr_vector parts(*ctx_);
        for (ExprId c : n.children) {
          parts.push_back(Translate(c));
        }
        return z3::mk_or(parts);
      }
      case ExprKind::kLinearLe:
        return LinearSum(n) <= 0;
      case ExprKind::kLinearEq:
        return LinearSum(n) == 0;
    }
    return ctx_->bool_val(true);
  }

  const std::vector<z3::expr>& int_consts() const { return int_consts_; }
  const std::vector<z3::expr>& bool_consts() const { return bool_consts_; }

 private:
  z3::expr LinearSum(const ExprNode& n) {
    z3::expr sum = ctx_->int_val(static_cast<int64_t>(n.constant));
    for (const LinearTerm& t : n.terms) {
      z3::expr term = int_consts_[static_cast<size_t>(t.var)];
      if (t.coefficient != 1) {
        term = ctx_->int_val(t.coefficient) * term;
      }
      sum = sum + term;
    }
    return sum;
  }

  z3::context* ctx_;
  const ConstraintSystem* system_;
  std::vector<z3::expr> bool_consts_;
  std::vector<z3::expr> int_consts_;
  std::vector<int> cache_;  // Reserved for subtree sharing; Z3 hash-conses
                            // internally so re-translation is cheap.
};

// Best-effort unsat core for an UNSAT system: re-check with a plain
// z3::solver asserting each hard constraint under a tracking boolean
// ("hc<i>"), ask Z3 to minimize the core, and map the surviving tracking
// booleans back to hard-constraint indices. Failures (old Z3 without
// core.minimize, a timeout during the re-check) leave the core empty —
// provenance never turns an UNSAT answer into an error.
void ExtractUnsatCore(z3::context* ctx, Z3Translator* translator,
                      const ConstraintSystem& system, double timeout_seconds,
                      MaxSmtResult* result) {
  try {
    z3::solver solver(*ctx);
    z3::params params(*ctx);
    params.set("unsat_core", true);
    if (timeout_seconds > 0) {
      params.set("timeout", TimeoutMillis(timeout_seconds));
    }
    solver.set(params);
    try {
      z3::params minimize(*ctx);
      minimize.set("core.minimize", true);
      solver.set(minimize);
    } catch (const z3::exception&) {
      // Minimization is an optimization of the diagnostic, not required.
    }
    const std::vector<ExprId>& hards = system.hard();
    for (size_t i = 0; i < hards.size(); ++i) {
      std::string tag = "hc" + std::to_string(i);
      solver.add(translator->Translate(hards[i]), tag.c_str());
    }
    for (IVarId v = 0; v < system.IntCount(); ++v) {
      const IntVarInfo& info = system.IntVar(v);
      const z3::expr& var = translator->int_consts()[static_cast<size_t>(v)];
      solver.add(var >= ctx->int_val(info.lower));
      solver.add(var <= ctx->int_val(info.upper));
    }
    if (solver.check() != z3::unsat) {
      return;  // The re-check timed out; keep the core empty.
    }
    z3::expr_vector core = solver.unsat_core();
    for (unsigned i = 0; i < core.size(); ++i) {
      std::string tag = core[static_cast<int>(i)].decl().name().str();
      if (tag.rfind("hc", 0) == 0) {
        result->unsat_core.push_back(std::stoi(tag.substr(2)));
      }
    }
    std::sort(result->unsat_core.begin(), result->unsat_core.end());
  } catch (const z3::exception&) {
    result->unsat_core.clear();
  }
}

// Surfaces Z3's Optimize statistics (decisions, conflicts, restarts,
// memory, ...) as "z3.<key>" counters on the result, and mirrors the call
// count into the global registry. Key names vary across Z3 versions; every
// key present is forwarded verbatim.
void ExtractStatistics(const z3::optimize& opt, MaxSmtResult* result) {
  try {
    z3::stats statistics = opt.statistics();
    for (unsigned i = 0; i < statistics.size(); ++i) {
      double value = statistics.is_uint(i)
                         ? static_cast<double>(statistics.uint_value(i))
                         : statistics.double_value(i);
      result->solver_counters.emplace_back("z3." + statistics.key(i), value);
    }
  } catch (const z3::exception&) {
    // Statistics are best-effort diagnostics; never fail a solve for them.
  }
  obs::CurrentRegistry().counter("solver.z3_solves").Increment();
}

class Z3Backend final : public MaxSmtBackend {
 public:
  MaxSmtResult Solve(const ConstraintSystem& system, double timeout_seconds) override {
    MaxSmtResult result;
    result.backend = name();
    obs::StageSpan span("solver.z3");
    try {
      z3::context ctx;
      z3::optimize opt(ctx);
      if (timeout_seconds > 0) {
        z3::params params(ctx);
        // TimeoutMillis clamps to [1, UINT_MAX] ms: a raw unsigned cast
        // wraps for huge budgets and truncates sub-millisecond caps to 0,
        // which Z3 interprets as "no timeout".
        params.set("timeout", TimeoutMillis(timeout_seconds));
        opt.set(params);
      }

      Z3Translator translator(&ctx, system);
      for (ExprId hard : system.hard()) {
        opt.add(translator.Translate(hard));
      }
      for (IVarId v = 0; v < system.IntCount(); ++v) {
        const IntVarInfo& info = system.IntVar(v);
        const z3::expr& var = translator.int_consts()[static_cast<size_t>(v)];
        opt.add(var >= ctx.int_val(info.lower));
        opt.add(var <= ctx.int_val(info.upper));
      }
      std::vector<z3::expr> soft_exprs;
      for (const SoftConstraint& soft : system.soft()) {
        z3::expr e = translator.Translate(soft.expr);
        soft_exprs.push_back(e);
        opt.add_soft(e, static_cast<unsigned>(soft.weight));
      }

      z3::check_result check = opt.check();
      ExtractStatistics(opt, &result);
      if (check == z3::unsat) {
        result.status = MaxSmtResult::Status::kUnsat;
        ExtractUnsatCore(&ctx, &translator, system, timeout_seconds, &result);
        return result;
      }
      if (check == z3::unknown) {
        result.status = MaxSmtResult::Status::kTimeout;
        result.message = "z3 returned unknown (time limit)";
        return result;
      }

      z3::model model = opt.get_model();
      result.status = MaxSmtResult::Status::kOptimal;
      result.bool_values.resize(static_cast<size_t>(system.BoolCount()));
      for (BVarId v = 0; v < system.BoolCount(); ++v) {
        z3::expr value =
            model.eval(translator.bool_consts()[static_cast<size_t>(v)], true);
        result.bool_values[static_cast<size_t>(v)] = value.is_true();
      }
      result.int_values.resize(static_cast<size_t>(system.IntCount()));
      for (IVarId v = 0; v < system.IntCount(); ++v) {
        z3::expr value = model.eval(translator.int_consts()[static_cast<size_t>(v)], true);
        result.int_values[static_cast<size_t>(v)] = value.get_numeral_int64();
      }
      // Cost = total weight of soft constraints the model violates; the
      // violated indices double as the edit-provenance record.
      for (size_t i = 0; i < soft_exprs.size(); ++i) {
        if (model.eval(soft_exprs[i], true).is_false()) {
          result.cost += system.soft()[i].weight;
          result.violated_soft.push_back(static_cast<int>(i));
        }
      }
      return result;
    } catch (const z3::exception& e) {
      // Never let a solver exception escape into a worker thread; the repair
      // engine records the error per-problem and keeps going.
      result.status = MaxSmtResult::Status::kError;
      result.message = std::string("z3 exception: ") + e.msg();
      return result;
    }
  }

  std::string name() const override { return "z3-optimize"; }
};

// Warm-start variant for incremental re-repair: keeps one z3::context +
// z3::optimize alive between Solve calls, with the hard constraints and
// integer bounds asserted at the base level and a push() marking where softs
// begin. A re-solve whose system carries the same HardFingerprint pops back
// to the base level (discarding only the previous softs) and re-asserts the
// new soft set — Z3 retains everything it derived from the hards. Any
// fingerprint mismatch, non-optimal outcome, or Z3 exception drops the
// state; warmth is a pure accelerator.
class WarmZ3Backend final : public MaxSmtBackend {
 public:
  MaxSmtResult Solve(const ConstraintSystem& system, double timeout_seconds) override {
    MaxSmtResult result;
    result.backend = name();
    obs::StageSpan span("solver.z3");
    const uint64_t fingerprint = system.HardFingerprint();
    const bool warm = state_ != nullptr && state_->fingerprint == fingerprint;
    try {
      if (!warm) {
        state_.reset();
        auto fresh = std::make_unique<State>();
        fresh->fingerprint = fingerprint;
        fresh->opt = std::make_unique<z3::optimize>(fresh->ctx);
        fresh->translator = std::make_unique<Z3Translator>(&fresh->ctx, system);
        for (ExprId hard : system.hard()) {
          fresh->opt->add(fresh->translator->Translate(hard));
        }
        for (IVarId v = 0; v < system.IntCount(); ++v) {
          const IntVarInfo& info = system.IntVar(v);
          const z3::expr& var = fresh->translator->int_consts()[static_cast<size_t>(v)];
          fresh->opt->add(var >= fresh->ctx.int_val(info.lower));
          fresh->opt->add(var <= fresh->ctx.int_val(info.upper));
        }
        fresh->opt->push();
        state_ = std::move(fresh);
      } else {
        state_->translator->Rebind(system);
        state_->opt->pop();
        state_->opt->push();
      }
      z3::optimize& opt = *state_->opt;
      if (timeout_seconds > 0) {
        z3::params params(state_->ctx);
        params.set("timeout", TimeoutMillis(timeout_seconds));
        opt.set(params);
      }
      std::vector<z3::expr> soft_exprs;
      for (const SoftConstraint& soft : system.soft()) {
        z3::expr e = state_->translator->Translate(soft.expr);
        soft_exprs.push_back(e);
        opt.add_soft(e, static_cast<unsigned>(soft.weight));
      }

      z3::check_result check = opt.check();
      ExtractStatistics(opt, &result);
      result.solver_counters.emplace_back(warm ? "warm.hit" : "warm.miss", 1.0);
      if (check == z3::unsat) {
        result.status = MaxSmtResult::Status::kUnsat;
        ExtractUnsatCore(&state_->ctx, state_->translator.get(), system,
                         timeout_seconds, &result);
        // The exprs borrow state_->ctx; they must die before the context.
        soft_exprs.clear();
        state_.reset();
        return result;
      }
      if (check == z3::unknown) {
        result.status = MaxSmtResult::Status::kTimeout;
        result.message = "z3 returned unknown (time limit)";
        soft_exprs.clear();
        state_.reset();
        return result;
      }

      z3::model model = opt.get_model();
      result.status = MaxSmtResult::Status::kOptimal;
      result.bool_values.resize(static_cast<size_t>(system.BoolCount()));
      for (BVarId v = 0; v < system.BoolCount(); ++v) {
        z3::expr value =
            model.eval(state_->translator->bool_consts()[static_cast<size_t>(v)], true);
        result.bool_values[static_cast<size_t>(v)] = value.is_true();
      }
      result.int_values.resize(static_cast<size_t>(system.IntCount()));
      for (IVarId v = 0; v < system.IntCount(); ++v) {
        z3::expr value =
            model.eval(state_->translator->int_consts()[static_cast<size_t>(v)], true);
        result.int_values[static_cast<size_t>(v)] = value.get_numeral_int64();
      }
      for (size_t i = 0; i < soft_exprs.size(); ++i) {
        if (model.eval(soft_exprs[i], true).is_false()) {
          result.cost += system.soft()[i].weight;
          result.violated_soft.push_back(static_cast<int>(i));
        }
      }
      return result;
    } catch (const z3::exception& e) {
      state_.reset();
      result.status = MaxSmtResult::Status::kError;
      result.message = std::string("z3 exception: ") + e.msg();
      return result;
    }
  }

  std::string name() const override { return "z3-optimize"; }

 private:
  struct State {
    z3::context ctx;
    std::unique_ptr<z3::optimize> opt;
    // Points into the system of the *current* Solve call only; Rebind runs
    // before any dereference on the next call.
    std::unique_ptr<Z3Translator> translator;
    uint64_t fingerprint = 0;
  };
  std::unique_ptr<State> state_;
};

}  // namespace

std::unique_ptr<MaxSmtBackend> MakeZ3Backend() { return std::make_unique<Z3Backend>(); }

std::unique_ptr<MaxSmtBackend> MakeWarmZ3Backend() {
  return std::make_unique<WarmZ3Backend>();
}

}  // namespace cpr
