// MaxSMT backend interface.
//
// CPR's repair formulation is solved by one of two interchangeable engines:
// Z3's Optimize facility (the paper's choice, required for PC4's integer
// edge costs) or the repository's own CDCL + core-guided MaxSAT stack
// (boolean-only, fully self-contained). bench/ablation_backend compares
// them.

#ifndef CPR_SRC_SOLVER_BACKEND_H_
#define CPR_SRC_SOLVER_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "solver/constraint_system.h"

namespace cpr {

struct MaxSmtResult {
  enum class Status {
    kOptimal,      // All hard constraints satisfied, soft weight maximized.
    kUnsat,        // Hard constraints unsatisfiable.
    kTimeout,      // Gave up within the time limit.
    kUnsupported,  // Backend cannot express the problem (ints on internal).
    kError,        // Backend failed internally (e.g. threw); see `message`.
  };
  Status status = Status::kUnsat;
  // Total weight of *violated* soft constraints.
  int64_t cost = 0;
  std::vector<bool> bool_values;     // Indexed by BVarId.
  std::vector<int64_t> int_values;   // Indexed by IVarId.

  // Diagnostics: which backend produced this result, how many solve
  // attempts (retries and failovers) it took, and failure detail for
  // kError/kUnsupported/kTimeout.
  std::string backend;
  int attempts = 1;
  std::string message;

  bool ok() const { return status == Status::kOptimal; }
};

inline const char* MaxSmtStatusName(MaxSmtResult::Status status) {
  switch (status) {
    case MaxSmtResult::Status::kOptimal:
      return "optimal";
    case MaxSmtResult::Status::kUnsat:
      return "unsat";
    case MaxSmtResult::Status::kTimeout:
      return "timeout";
    case MaxSmtResult::Status::kUnsupported:
      return "unsupported";
    case MaxSmtResult::Status::kError:
      return "error";
  }
  return "?";
}

class MaxSmtBackend {
 public:
  virtual ~MaxSmtBackend() = default;

  // `timeout_seconds` <= 0 means unbounded.
  virtual MaxSmtResult Solve(const ConstraintSystem& system, double timeout_seconds) = 0;
  virtual std::string name() const = 0;
};

// Z3 Optimize with assert_soft (handles integers).
std::unique_ptr<MaxSmtBackend> MakeZ3Backend();

// Homegrown Tseitin -> CDCL/MaxSAT pipeline (boolean problems only).
std::unique_ptr<MaxSmtBackend> MakeInternalBackend();

}  // namespace cpr

#endif  // CPR_SRC_SOLVER_BACKEND_H_
