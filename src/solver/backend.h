// MaxSMT backend interface.
//
// CPR's repair formulation is solved by one of two interchangeable engines:
// Z3's Optimize facility (the paper's choice, required for PC4's integer
// edge costs) or the repository's own CDCL + core-guided MaxSAT stack
// (boolean-only, fully self-contained). bench/ablation_backend compares
// them.

#ifndef CPR_SRC_SOLVER_BACKEND_H_
#define CPR_SRC_SOLVER_BACKEND_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "solver/constraint_system.h"

namespace cpr {

struct Certificate;  // smt/certificate.h

struct MaxSmtResult {
  enum class Status {
    kOptimal,      // All hard constraints satisfied, soft weight maximized.
    kUnsat,        // Hard constraints unsatisfiable.
    kTimeout,      // Gave up within the time limit.
    kUnsupported,  // Backend cannot express the problem (ints on internal).
    kError,        // Backend failed internally (e.g. threw); see `message`.
  };
  Status status = Status::kUnsat;
  // Total weight of *violated* soft constraints.
  int64_t cost = 0;
  std::vector<bool> bool_values;     // Indexed by BVarId.
  std::vector<int64_t> int_values;   // Indexed by IVarId.

  // Diagnostics: which backend produced this result, how many solve
  // attempts (retries and failovers) it took, and failure detail for
  // kError/kUnsupported/kTimeout.
  std::string backend;
  int attempts = 1;
  std::string message;

  // Solver-internal counters for observability: CDCL statistics
  // ("cdcl.decisions", "cdcl.conflicts", ...) from the internal backend, Z3
  // Optimize statistics ("z3.<key>") from the Z3 backend. Kept as ordered
  // name/value pairs so per-problem reports serialize deterministically.
  std::vector<std::pair<std::string, double>> solver_counters;

  // Provenance. For kOptimal: indices into ConstraintSystem::soft() of the
  // soft constraints the optimum violates (their weights sum to `cost`).
  // For kUnsat: indices into ConstraintSystem::hard() forming an
  // unsatisfiable core — minimal where the backend supports minimization
  // (Z3 core.minimize), a failed-assumption subset otherwise (internal
  // CDCL). Empty when the backend could not extract one.
  std::vector<int> violated_soft;
  std::vector<int> unsat_core;

  // Certification (src/certify/). A backend's SolveCertified attaches the
  // evidence bundle; the certifying wrapper sets `certification` after
  // checking it. kFailed results must never ship: FailoverBackend reroutes
  // them to the secondary engine or demotes them to kError.
  enum class Certification {
    kNone,      // Not requested / not applicable for this status.
    kVerified,  // The independent checker validated the claim.
    kFailed,    // The check failed; treat the result as untrusted.
  };
  Certification certification = Certification::kNone;
  std::string certify_message;  // Failure detail when kFailed.
  std::shared_ptr<const Certificate> certificate;

  bool ok() const { return status == Status::kOptimal; }
};

inline const char* CertificationName(MaxSmtResult::Certification certification) {
  switch (certification) {
    case MaxSmtResult::Certification::kNone:
      return "none";
    case MaxSmtResult::Certification::kVerified:
      return "verified";
    case MaxSmtResult::Certification::kFailed:
      return "failed";
  }
  return "?";
}

inline const char* MaxSmtStatusName(MaxSmtResult::Status status) {
  switch (status) {
    case MaxSmtResult::Status::kOptimal:
      return "optimal";
    case MaxSmtResult::Status::kUnsat:
      return "unsat";
    case MaxSmtResult::Status::kTimeout:
      return "timeout";
    case MaxSmtResult::Status::kUnsupported:
      return "unsupported";
    case MaxSmtResult::Status::kError:
      return "error";
  }
  return "?";
}

// Converts a positive per-call timeout in seconds to the milliseconds unit
// solver APIs (Z3's "timeout" parameter) expect, clamped to [1, UINT_MAX].
// The clamp matters at both edges: a sub-millisecond budget must not
// truncate to 0 (which Z3 reads as "no timeout", defeating the Deadline
// contract), and a huge remaining budget (> ~49.7 days) must saturate
// instead of wrapping the unsigned cast into a bogus small value.
// Callers gate on `timeout_seconds > 0` first: non-positive means unbounded
// by the MaxSmtBackend convention and should not reach this conversion.
inline unsigned TimeoutMillis(double timeout_seconds) {
  double millis = timeout_seconds * 1000.0;
  constexpr double kMax = static_cast<double>(std::numeric_limits<unsigned>::max());
  if (!(millis < kMax)) {  // Also saturates on NaN.
    return std::numeric_limits<unsigned>::max();
  }
  if (millis < 1.0) {
    return 1u;
  }
  return static_cast<unsigned>(millis);
}

class MaxSmtBackend {
 public:
  virtual ~MaxSmtBackend() = default;

  // `timeout_seconds` <= 0 means unbounded.
  virtual MaxSmtResult Solve(const ConstraintSystem& system, double timeout_seconds) = 0;

  // Like Solve, but additionally attaches proof evidence to the result
  // (MaxSmtResult::certificate) when the engine can produce it. The default
  // falls back to a plain solve — the certifying wrapper then builds the
  // weaker model-only certificate from the result itself. Engines with a
  // proof-logging path (the internal CDCL/MaxSAT stack) override this;
  // decorators (fault injection, failover, borrowing) must forward it.
  virtual MaxSmtResult SolveCertified(const ConstraintSystem& system, double timeout_seconds) {
    return Solve(system, timeout_seconds);
  }

  virtual std::string name() const = 0;
};

// Z3 Optimize with assert_soft (handles integers).
std::unique_ptr<MaxSmtBackend> MakeZ3Backend();

// Homegrown Tseitin -> CDCL/MaxSAT pipeline (boolean problems only).
std::unique_ptr<MaxSmtBackend> MakeInternalBackend();

// Warm-started variants for incremental re-repair: each instance retains
// solver state between Solve calls and reuses it when the next system
// carries the same HardFingerprint (same hards/variables, possibly
// different softs). On a fingerprint mismatch or any non-optimal outcome
// they fall back to a cold solve — results are always identical to the
// cold backends, only faster on repeats. NOT thread-safe: a warm instance
// must be owned by one problem key and called from one thread at a time.
std::unique_ptr<MaxSmtBackend> MakeWarmZ3Backend();
std::unique_ptr<MaxSmtBackend> MakeWarmInternalBackend();

}  // namespace cpr

#endif  // CPR_SRC_SOLVER_BACKEND_H_
