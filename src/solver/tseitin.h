// Tseitin encoder: ConstraintSystem boolean expressions -> CNF.
//
// Templated over the clause sink so the same encoder serves the MaxSatSolver
// solve path, the plain-SatSolver unsat-core path, and the certify checker's
// encoding replay (src/certify/check.cc regenerates a solve's input clause
// stream and compares it against the proof log, which is what lets a
// certificate's baseline be *checked* rather than trusted for cold solves).
// `Solver` needs NewVar() -> BoolVar and AddHard(Clause).
//
// Determinism contract: for a fixed ConstraintSystem and a fixed sequence of
// Encode() calls, the encoder allocates the same variables and emits the
// same clauses in the same order. The replay comparison depends on this, so
// keep Encode's traversal order stable.

#ifndef CPR_SRC_SOLVER_TSEITIN_H_
#define CPR_SRC_SOLVER_TSEITIN_H_

#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "smt/sat_solver.h"
#include "solver/constraint_system.h"

namespace cpr {

template <typename Solver>
class Tseitin {
 public:
  Tseitin(Solver* solver, const ConstraintSystem& system)
      : solver_(solver), system_(&system) {
    // Decision variables occupy the first BoolCount() solver variables so
    // the model maps back by identity.
    for (BVarId v = 0; v < system.BoolCount(); ++v) {
      solver_->NewVar();
    }
    true_lit_ = Lit(solver_->NewVar(), false);
    solver_->AddHard({true_lit_});
  }

  // Re-points the encoder at a structurally identical system (equal
  // HardFingerprint): node ids, variable ids, and children are
  // position-identical across such systems, so every cached definition
  // literal — and every clause already in the solver — stays valid. This is
  // what lets a warm backend skip re-encoding unchanged hard constraints.
  void Rebind(const ConstraintSystem& system) { system_ = &system; }

  // Definition literal for an expression: the literal is true in a model iff
  // the expression is.
  std::optional<Lit> Encode(ExprId id) {
    if (auto it = cache_.find(id); it != cache_.end()) {
      return it->second;
    }
    const ExprNode& n = system_->node(id);
    std::optional<Lit> lit;
    switch (n.kind) {
      case ExprKind::kTrue:
        lit = true_lit_;
        break;
      case ExprKind::kFalse:
        lit = ~true_lit_;
        break;
      case ExprKind::kBoolVar:
        lit = Lit(static_cast<BoolVar>(n.bool_var), false);
        break;
      case ExprKind::kNot: {
        std::optional<Lit> child = Encode(n.children[0]);
        if (child.has_value()) {
          lit = ~*child;
        }
        break;
      }
      case ExprKind::kAnd:
      case ExprKind::kOr: {
        std::vector<Lit> children;
        for (ExprId c : n.children) {
          std::optional<Lit> child = Encode(c);
          if (!child.has_value()) {
            return std::nullopt;
          }
          children.push_back(*child);
        }
        Lit def = Lit(solver_->NewVar(), false);
        if (n.kind == ExprKind::kAnd) {
          // def <-> AND(children)
          Clause back{def};
          for (Lit c : children) {
            solver_->AddHard({~def, c});
            back.push_back(~c);
          }
          solver_->AddHard(std::move(back));
        } else {
          // def <-> OR(children)
          Clause fwd{~def};
          for (Lit c : children) {
            solver_->AddHard({~c, def});
            fwd.push_back(c);
          }
          solver_->AddHard(std::move(fwd));
        }
        lit = def;
        break;
      }
      case ExprKind::kLinearLe:
      case ExprKind::kLinearEq:
        return std::nullopt;  // Integers are Z3-only.
    }
    if (lit.has_value()) {
      cache_.emplace(id, *lit);
    }
    return lit;
  }

 private:
  Solver* solver_;
  const ConstraintSystem* system_;
  Lit true_lit_ = kUndefLit;
  std::unordered_map<ExprId, Lit> cache_;
};

// Adapts SatSolver to the Tseitin clause-sink interface.
struct SatSink {
  SatSolver* sat;
  BoolVar NewVar() { return sat->NewVar(); }
  void AddHard(Clause clause) { sat->AddClause(std::move(clause)); }
};

}  // namespace cpr

#endif  // CPR_SRC_SOLVER_TSEITIN_H_
