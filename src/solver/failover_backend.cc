#include "solver/failover.h"

#include <exception>
#include <utility>

#include "obs/metrics.h"

namespace cpr {

namespace {

class FailoverBackend final : public MaxSmtBackend {
 public:
  FailoverBackend(std::unique_ptr<MaxSmtBackend> primary,
                  std::unique_ptr<MaxSmtBackend> secondary, const FailoverPolicy& policy)
      : primary_(std::move(primary)), secondary_(std::move(secondary)), policy_(policy) {}

  MaxSmtResult Solve(const ConstraintSystem& system, double timeout_seconds) override {
    int attempts = 0;
    MaxSmtResult result = SolveOn(primary_.get(), system, timeout_seconds, &attempts);
    if (result.status == MaxSmtResult::Status::kUnsupported && secondary_ != nullptr) {
      obs::CurrentRegistry().counter("solver.failovers").Increment();
      result = SolveOn(secondary_.get(), system, timeout_seconds, &attempts);
    }
    result.attempts = attempts;
    return result;
  }

  std::string name() const override {
    return secondary_ == nullptr ? "failover(" + primary_->name() + ")"
                                 : "failover(" + primary_->name() + "->" +
                                       secondary_->name() + ")";
  }

 private:
  // One backend with timeout-escalation retries. Exceptions become kError
  // immediately (no retry: a throwing backend is unlikely to recover, and
  // retrying would mask the diagnostic).
  MaxSmtResult SolveOn(MaxSmtBackend* backend, const ConstraintSystem& system,
                       double timeout_seconds, int* attempts) {
    MaxSmtResult result;
    for (int attempt = 0;; ++attempt) {
      ++*attempts;
      try {
        result = backend->Solve(system, policy_.deadline.ClampTimeout(timeout_seconds));
      } catch (const std::exception& e) {
        result = MaxSmtResult{};
        result.status = MaxSmtResult::Status::kError;
        result.message = e.what();
        obs::CurrentRegistry().counter("solver.exceptions_caught").Increment();
      } catch (...) {
        result = MaxSmtResult{};
        result.status = MaxSmtResult::Status::kError;
        result.message = "backend threw a non-standard exception";
        obs::CurrentRegistry().counter("solver.exceptions_caught").Increment();
      }
      if (result.backend.empty()) {
        result.backend = backend->name();
      }
      if (result.status != MaxSmtResult::Status::kTimeout ||
          attempt >= policy_.max_retries || policy_.deadline.Expired()) {
        return result;
      }
      obs::CurrentRegistry().counter("solver.retries").Increment();
      // Escalate the per-call timeout for the retry; an unbounded timeout
      // (<= 0) stays unbounded, and ClampTimeout above keeps every attempt
      // inside the shared deadline.
      if (timeout_seconds > 0) {
        timeout_seconds *= policy_.backoff;
        if (policy_.max_timeout_seconds > 0 &&
            timeout_seconds > policy_.max_timeout_seconds) {
          timeout_seconds = policy_.max_timeout_seconds;
        }
      }
    }
  }

  std::unique_ptr<MaxSmtBackend> primary_;
  std::unique_ptr<MaxSmtBackend> secondary_;
  FailoverPolicy policy_;
};

}  // namespace

std::unique_ptr<MaxSmtBackend> MakeFailoverBackend(std::unique_ptr<MaxSmtBackend> primary,
                                                   std::unique_ptr<MaxSmtBackend> secondary,
                                                   const FailoverPolicy& policy) {
  return std::make_unique<FailoverBackend>(std::move(primary), std::move(secondary),
                                           policy);
}

}  // namespace cpr
