#include "solver/failover.h"

#include <exception>
#include <utility>

#include "obs/metrics.h"

namespace cpr {

namespace {

class FailoverBackend final : public MaxSmtBackend {
 public:
  FailoverBackend(std::unique_ptr<MaxSmtBackend> primary,
                  std::unique_ptr<MaxSmtBackend> secondary, const FailoverPolicy& policy)
      : primary_(std::move(primary)), secondary_(std::move(secondary)), policy_(policy) {}

  MaxSmtResult Solve(const ConstraintSystem& system, double timeout_seconds) override {
    return Run(system, timeout_seconds, /*certified=*/false);
  }

  MaxSmtResult SolveCertified(const ConstraintSystem& system,
                              double timeout_seconds) override {
    return Run(system, timeout_seconds, /*certified=*/true);
  }

  std::string name() const override {
    return secondary_ == nullptr ? "failover(" + primary_->name() + ")"
                                 : "failover(" + primary_->name() + "->" +
                                       secondary_->name() + ")";
  }

 private:
  MaxSmtResult Run(const ConstraintSystem& system, double timeout_seconds,
                   bool certified) {
    int attempts = 0;
    MaxSmtResult result =
        SolveOn(primary_.get(), system, timeout_seconds, &attempts, certified);
    if (result.status == MaxSmtResult::Status::kUnsupported && secondary_ != nullptr) {
      obs::CurrentRegistry().counter("solver.failovers").Increment();
      result = SolveOn(secondary_.get(), system, timeout_seconds, &attempts, certified);
    }
    // A result whose certificate failed the independent check is untrusted
    // evidence, not an answer: reroute to the secondary engine (whose own
    // result is checked by its own certifying wrapper), and if that also
    // fails — or there is no secondary — demote to kError so an unproven
    // repair can never ship as a success.
    if (result.certification == MaxSmtResult::Certification::kFailed) {
      obs::Registry& registry = obs::CurrentRegistry();
      if (secondary_ != nullptr) {
        registry.counter("certify.failover").Increment();
        result = SolveOn(secondary_.get(), system, timeout_seconds, &attempts, certified);
      }
      if (result.certification == MaxSmtResult::Certification::kFailed) {
        registry.counter("certify.demoted").Increment();
        result.status = MaxSmtResult::Status::kError;
        result.message = "certificate check failed: " + result.certify_message;
      }
    }
    result.attempts = attempts;
    return result;
  }

  // One backend with timeout-escalation retries. Exceptions become kError
  // immediately (no retry: a throwing backend is unlikely to recover, and
  // retrying would mask the diagnostic).
  MaxSmtResult SolveOn(MaxSmtBackend* backend, const ConstraintSystem& system,
                       double timeout_seconds, int* attempts, bool certified) {
    MaxSmtResult result;
    for (int attempt = 0;; ++attempt) {
      ++*attempts;
      try {
        const double budget = policy_.deadline.ClampTimeout(timeout_seconds);
        result = certified ? backend->SolveCertified(system, budget)
                           : backend->Solve(system, budget);
      } catch (const std::exception& e) {
        result = MaxSmtResult{};
        result.status = MaxSmtResult::Status::kError;
        result.message = e.what();
        obs::CurrentRegistry().counter("solver.exceptions_caught").Increment();
      } catch (...) {
        result = MaxSmtResult{};
        result.status = MaxSmtResult::Status::kError;
        result.message = "backend threw a non-standard exception";
        obs::CurrentRegistry().counter("solver.exceptions_caught").Increment();
      }
      if (result.backend.empty()) {
        result.backend = backend->name();
      }
      if (result.status != MaxSmtResult::Status::kTimeout ||
          attempt >= policy_.max_retries || policy_.deadline.Expired()) {
        return result;
      }
      obs::CurrentRegistry().counter("solver.retries").Increment();
      // Escalate the per-call timeout for the retry; an unbounded timeout
      // (<= 0) stays unbounded, and ClampTimeout above keeps every attempt
      // inside the shared deadline.
      if (timeout_seconds > 0) {
        timeout_seconds *= policy_.backoff;
        if (policy_.max_timeout_seconds > 0 &&
            timeout_seconds > policy_.max_timeout_seconds) {
          timeout_seconds = policy_.max_timeout_seconds;
        }
      }
    }
  }

  std::unique_ptr<MaxSmtBackend> primary_;
  std::unique_ptr<MaxSmtBackend> secondary_;
  FailoverPolicy policy_;
};

}  // namespace

std::unique_ptr<MaxSmtBackend> MakeFailoverBackend(std::unique_ptr<MaxSmtBackend> primary,
                                                   std::unique_ptr<MaxSmtBackend> secondary,
                                                   const FailoverPolicy& policy) {
  return std::make_unique<FailoverBackend>(std::move(primary), std::move(secondary),
                                           policy);
}

}  // namespace cpr
