// MaxSMT backend on the homegrown CDCL/MaxSAT stack.
//
// Boolean expressions are Tseitin-encoded: every composite node gets a
// definition literal equivalent to the node, hard constraints assert their
// root literal, and each soft constraint's root literal becomes a weighted
// unit soft clause. Integer atoms (PC4 cost constraints) are not expressible
// here; such systems are reported kUnsupported and the repair engine routes
// them to Z3.

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "netbase/deadline.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "smt/maxsat.h"
#include "solver/backend.h"

namespace cpr {

namespace {

// Templated over the clause sink so the same encoder serves both the
// MaxSatSolver solve path and the plain-SatSolver unsat-core path. `Solver`
// needs NewVar() -> BoolVar and AddHard(Clause).
template <typename Solver>
class Tseitin {
 public:
  Tseitin(Solver* solver, const ConstraintSystem& system)
      : solver_(solver), system_(&system) {
    // Decision variables occupy the first BoolCount() solver variables so
    // the model maps back by identity.
    for (BVarId v = 0; v < system.BoolCount(); ++v) {
      solver_->NewVar();
    }
    true_lit_ = Lit(solver_->NewVar(), false);
    solver_->AddHard({true_lit_});
  }

  // Re-points the encoder at a structurally identical system (equal
  // HardFingerprint): node ids, variable ids, and children are
  // position-identical across such systems, so every cached definition
  // literal — and every clause already in the solver — stays valid. This is
  // what lets a warm backend skip re-encoding unchanged hard constraints.
  void Rebind(const ConstraintSystem& system) { system_ = &system; }

  // Definition literal for an expression: the literal is true in a model iff
  // the expression is.
  std::optional<Lit> Encode(ExprId id) {
    if (auto it = cache_.find(id); it != cache_.end()) {
      return it->second;
    }
    const ExprNode& n = system_->node(id);
    std::optional<Lit> lit;
    switch (n.kind) {
      case ExprKind::kTrue:
        lit = true_lit_;
        break;
      case ExprKind::kFalse:
        lit = ~true_lit_;
        break;
      case ExprKind::kBoolVar:
        lit = Lit(static_cast<BoolVar>(n.bool_var), false);
        break;
      case ExprKind::kNot: {
        std::optional<Lit> child = Encode(n.children[0]);
        if (child.has_value()) {
          lit = ~*child;
        }
        break;
      }
      case ExprKind::kAnd:
      case ExprKind::kOr: {
        std::vector<Lit> children;
        for (ExprId c : n.children) {
          std::optional<Lit> child = Encode(c);
          if (!child.has_value()) {
            return std::nullopt;
          }
          children.push_back(*child);
        }
        Lit def = Lit(solver_->NewVar(), false);
        if (n.kind == ExprKind::kAnd) {
          // def <-> AND(children)
          Clause back{def};
          for (Lit c : children) {
            solver_->AddHard({~def, c});
            back.push_back(~c);
          }
          solver_->AddHard(std::move(back));
        } else {
          // def <-> OR(children)
          Clause fwd{~def};
          for (Lit c : children) {
            solver_->AddHard({~c, def});
            fwd.push_back(c);
          }
          solver_->AddHard(std::move(fwd));
        }
        lit = def;
        break;
      }
      case ExprKind::kLinearLe:
      case ExprKind::kLinearEq:
        return std::nullopt;  // Integers are Z3-only.
    }
    if (lit.has_value()) {
      cache_.emplace(id, *lit);
    }
    return lit;
  }

 private:
  Solver* solver_;
  const ConstraintSystem* system_;
  Lit true_lit_ = kUndefLit;
  std::unordered_map<ExprId, Lit> cache_;
};

// Adapts SatSolver to the Tseitin clause-sink interface.
struct SatSink {
  SatSolver* sat;
  BoolVar NewVar() { return sat->NewVar(); }
  void AddHard(Clause clause) { sat->AddClause(std::move(clause)); }
};

// Assumption-based unsat core for an UNSAT system: re-encode the hard
// constraints into a fresh SAT solver, assume every hard root literal, and
// map the failed-assumption subset back to hard-constraint indices. The
// shared Tseitin cache can hand two hard constraints the same root literal;
// the core then lists both (a correct, if less minimal, core).
void ExtractInternalCore(const ConstraintSystem& system, double timeout_seconds,
                         MaxSmtResult* result) {
  SatSolver sat;
  sat.SetDeadline(Deadline::After(timeout_seconds));
  SatSink sink{&sat};
  Tseitin<SatSink> tseitin(&sink, system);
  std::vector<Lit> assumptions;
  std::unordered_map<int64_t, std::vector<int>> owners;  // Lit key -> hards.
  const std::vector<ExprId>& hards = system.hard();
  for (size_t i = 0; i < hards.size(); ++i) {
    std::optional<Lit> lit = tseitin.Encode(hards[i]);
    if (!lit.has_value()) {
      return;  // Not boolean-expressible; the solve path reported that.
    }
    int64_t key = static_cast<int64_t>(lit->var()) * 2 + (lit->negated() ? 1 : 0);
    auto [it, inserted] = owners.try_emplace(key);
    if (inserted) {
      assumptions.push_back(*lit);
    }
    it->second.push_back(static_cast<int>(i));
  }
  if (sat.Solve(assumptions) != SatResult::kUnsat) {
    return;  // Timed out (or the Tseitin roots alone are level-0 unsat).
  }
  for (Lit failed : sat.UnsatCore()) {
    int64_t key = static_cast<int64_t>(failed.var()) * 2 + (failed.negated() ? 1 : 0);
    auto it = owners.find(key);
    if (it != owners.end()) {
      result->unsat_core.insert(result->unsat_core.end(), it->second.begin(),
                                it->second.end());
    }
  }
  std::sort(result->unsat_core.begin(), result->unsat_core.end());
}

// The CDCL engine accumulates statistics across Solve calls; a warm backend
// reporting per-solve numbers subtracts the totals it saw last run.
SatStats DiffSatStats(const SatStats& now, const SatStats& prev) {
  SatStats d;
  d.decisions = now.decisions - prev.decisions;
  d.propagations = now.propagations - prev.propagations;
  d.conflicts = now.conflicts - prev.conflicts;
  d.restarts = now.restarts - prev.restarts;
  d.learnt_deleted = now.learnt_deleted - prev.learnt_deleted;
  d.learnt_literals = now.learnt_literals - prev.learnt_literals;
  d.activity_rescales = now.activity_rescales - prev.activity_rescales;
  d.heap_picks = now.heap_picks - prev.heap_picks;
  d.fallback_picks = now.fallback_picks - prev.fallback_picks;
  return d;
}

MaxSatStats DiffMaxSatStats(const MaxSatStats& now, const MaxSatStats& prev) {
  MaxSatStats d;
  d.cores = now.cores - prev.cores;
  d.sat_calls = now.sat_calls - prev.sat_calls;
  return d;
}

// Copies the CDCL/MaxSAT engine's per-solve statistics onto the result (for
// per-problem reports) and accumulates them into the global registry (for
// run-wide totals). The solver keeps plain local counters on its hot path;
// this once-per-solve flush is the only registry traffic.
void FlushSolverCounters(const SatStats& sat, const MaxSatStats& wpm,
                         MaxSmtResult* result) {
  result->solver_counters = {
      {"cdcl.decisions", static_cast<double>(sat.decisions)},
      {"cdcl.propagations", static_cast<double>(sat.propagations)},
      {"cdcl.conflicts", static_cast<double>(sat.conflicts)},
      {"cdcl.restarts", static_cast<double>(sat.restarts)},
      {"cdcl.learnt_deleted", static_cast<double>(sat.learnt_deleted)},
      {"cdcl.learnt_literals", static_cast<double>(sat.learnt_literals)},
      {"cdcl.activity_rescales", static_cast<double>(sat.activity_rescales)},
      {"cdcl.heap_picks", static_cast<double>(sat.heap_picks)},
      {"cdcl.fallback_picks", static_cast<double>(sat.fallback_picks)},
      {"maxsat.cores", static_cast<double>(wpm.cores)},
      {"maxsat.sat_calls", static_cast<double>(wpm.sat_calls)},
  };
  obs::Registry& registry = obs::CurrentRegistry();
  for (const auto& [name, value] : result->solver_counters) {
    registry.counter(name).Add(static_cast<int64_t>(value));
  }
  registry.counter("solver.internal_solves").Increment();
}

class InternalBackend final : public MaxSmtBackend {
 public:
  MaxSmtResult Solve(const ConstraintSystem& system, double timeout_seconds) override {
    MaxSmtResult result;
    result.backend = name();
    obs::StageSpan span("solver.internal");
    if (system.HasIntegers()) {
      result.status = MaxSmtResult::Status::kUnsupported;
      result.message = "integer constraints require the Z3 backend";
      return result;
    }
    MaxSatSolver maxsat;
    maxsat.SetDeadline(Deadline::After(timeout_seconds));
    Tseitin<MaxSatSolver> tseitin(&maxsat, system);
    for (ExprId hard : system.hard()) {
      std::optional<Lit> lit = tseitin.Encode(hard);
      if (!lit.has_value()) {
        result.status = MaxSmtResult::Status::kUnsupported;
        result.message = "expression not expressible in the boolean fragment";
        return result;
      }
      maxsat.AddHard({*lit});
    }
    for (const SoftConstraint& soft : system.soft()) {
      std::optional<Lit> lit = tseitin.Encode(soft.expr);
      if (!lit.has_value()) {
        result.status = MaxSmtResult::Status::kUnsupported;
        result.message = "expression not expressible in the boolean fragment";
        return result;
      }
      maxsat.AddSoft({*lit}, soft.weight);
    }

    std::optional<MaxSatSolver::Solution> solution = maxsat.Solve();
    FlushSolverCounters(maxsat.sat_stats(), maxsat.stats(), &result);
    if (!solution.has_value()) {
      if (maxsat.TimedOut()) {
        result.status = MaxSmtResult::Status::kTimeout;
        result.message = "CDCL search abandoned at the time limit";
      } else {
        result.status = MaxSmtResult::Status::kUnsat;
        ExtractInternalCore(system, timeout_seconds, &result);
      }
      return result;
    }
    result.status = MaxSmtResult::Status::kOptimal;
    result.cost = solution->cost;
    result.bool_values.resize(static_cast<size_t>(system.BoolCount()));
    for (BVarId v = 0; v < system.BoolCount(); ++v) {
      result.bool_values[static_cast<size_t>(v)] = solution->model[static_cast<size_t>(v)];
    }
    // Provenance: which softs the optimum sacrificed.
    const std::vector<SoftConstraint>& softs = system.soft();
    for (size_t i = 0; i < softs.size(); ++i) {
      if (!system.EvalOnModel(softs[i].expr, result.bool_values, result.int_values)) {
        result.violated_soft.push_back(static_cast<int>(i));
      }
    }
    return result;
  }

  std::string name() const override { return "internal-maxsat"; }
};

// Warm-start variant for incremental re-repair: keeps the CDCL solver (with
// its learnt clauses and Tseitin encoding of the hard constraints) alive
// between Solve calls. A re-solve whose system carries the same
// HardFingerprint skips re-encoding everything but the softs — unit soft
// clauses are their own selectors, so a warm run adds zero new clauses —
// and restarts the search from the learnt state (PR 5's assumption
// machinery: softs are enforced via assumptions, never baked-in clauses).
// Any mismatch, timeout, UNSAT, or unsupported system drops the state and
// falls back to a cold solve; warmth is a pure accelerator.
class WarmInternalBackend final : public MaxSmtBackend {
 public:
  MaxSmtResult Solve(const ConstraintSystem& system, double timeout_seconds) override {
    MaxSmtResult result;
    result.backend = name();
    obs::StageSpan span("solver.internal");
    if (system.HasIntegers()) {
      state_.reset();
      result.status = MaxSmtResult::Status::kUnsupported;
      result.message = "integer constraints require the Z3 backend";
      return result;
    }
    const uint64_t fingerprint = system.HardFingerprint();
    const bool warm = state_ != nullptr && state_->fingerprint == fingerprint;
    if (!warm) {
      state_.reset();
      state_ = std::make_unique<State>();
      state_->fingerprint = fingerprint;
      state_->tseitin =
          std::make_unique<Tseitin<MaxSatSolver>>(&state_->maxsat, system);
      for (ExprId hard : system.hard()) {
        std::optional<Lit> lit = state_->tseitin->Encode(hard);
        if (!lit.has_value()) {
          state_.reset();
          result.status = MaxSmtResult::Status::kUnsupported;
          result.message = "expression not expressible in the boolean fragment";
          return result;
        }
        state_->maxsat.AddHard({*lit});
      }
    } else {
      state_->tseitin->Rebind(system);
      state_->maxsat.ResetSofts();
    }
    state_->maxsat.SetDeadline(Deadline::After(timeout_seconds));
    for (const SoftConstraint& soft : system.soft()) {
      std::optional<Lit> lit = state_->tseitin->Encode(soft.expr);
      if (!lit.has_value()) {
        state_.reset();
        result.status = MaxSmtResult::Status::kUnsupported;
        result.message = "expression not expressible in the boolean fragment";
        return result;
      }
      state_->maxsat.AddSoft({*lit}, soft.weight);
    }

    std::optional<MaxSatSolver::Solution> solution = state_->maxsat.Solve();
    FlushSolverCounters(DiffSatStats(state_->maxsat.sat_stats(), state_->sat_base),
                        DiffMaxSatStats(state_->maxsat.stats(), state_->wpm_base),
                        &result);
    result.solver_counters.emplace_back(warm ? "warm.hit" : "warm.miss", 1.0);
    if (!solution.has_value()) {
      if (state_->maxsat.TimedOut()) {
        result.status = MaxSmtResult::Status::kTimeout;
        result.message = "CDCL search abandoned at the time limit";
      } else {
        result.status = MaxSmtResult::Status::kUnsat;
        ExtractInternalCore(system, timeout_seconds, &result);
      }
      // A timed-out or UNSAT solver state is not a base worth warming: the
      // next run cold-starts.
      state_.reset();
      return result;
    }
    state_->sat_base = state_->maxsat.sat_stats();
    state_->wpm_base = state_->maxsat.stats();
    result.status = MaxSmtResult::Status::kOptimal;
    result.cost = solution->cost;
    result.bool_values.resize(static_cast<size_t>(system.BoolCount()));
    for (BVarId v = 0; v < system.BoolCount(); ++v) {
      result.bool_values[static_cast<size_t>(v)] = solution->model[static_cast<size_t>(v)];
    }
    const std::vector<SoftConstraint>& softs = system.soft();
    for (size_t i = 0; i < softs.size(); ++i) {
      if (!system.EvalOnModel(softs[i].expr, result.bool_values, result.int_values)) {
        result.violated_soft.push_back(static_cast<int>(i));
      }
    }
    return result;
  }

  std::string name() const override { return "internal-maxsat"; }

 private:
  struct State {
    MaxSatSolver maxsat;
    // Points into the system of the *current* Solve call only; Rebind runs
    // before any dereference on the next call.
    std::unique_ptr<Tseitin<MaxSatSolver>> tseitin;
    uint64_t fingerprint = 0;
    // Cumulative engine statistics as of the last completed solve, so
    // per-solve counters report deltas.
    SatStats sat_base;
    MaxSatStats wpm_base;
  };
  std::unique_ptr<State> state_;
};

}  // namespace

std::unique_ptr<MaxSmtBackend> MakeInternalBackend() {
  return std::make_unique<InternalBackend>();
}

std::unique_ptr<MaxSmtBackend> MakeWarmInternalBackend() {
  return std::make_unique<WarmInternalBackend>();
}

}  // namespace cpr
