// MaxSMT backend on the homegrown CDCL/MaxSAT stack.
//
// Boolean expressions are Tseitin-encoded: every composite node gets a
// definition literal equivalent to the node, hard constraints assert their
// root literal, and each soft constraint's root literal becomes a weighted
// unit soft clause. Integer atoms (PC4 cost constraints) are not expressible
// here; such systems are reported kUnsupported and the repair engine routes
// them to Z3.
//
// SolveCertified runs the same pipeline with a ProofLog attached and packs
// the evidence — proof events, soft inventory, Fu-Malik relaxation trail,
// witness model, and (for UNSAT) the assumption-core sub-proof — into a
// Certificate the independent checker (src/certify/) validates.

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "netbase/deadline.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "smt/certificate.h"
#include "smt/maxsat.h"
#include "solver/backend.h"
#include "solver/tseitin.h"

namespace cpr {

namespace {

// Assumption-based unsat core for an UNSAT system: re-encode the hard
// constraints into a fresh SAT solver, assume every hard root literal, and
// map the failed-assumption subset back to hard-constraint indices. The
// shared Tseitin cache can hand two hard constraints the same root literal;
// the core then lists both (a correct, if less minimal, core).
//
// With `cert` non-null the fresh solver logs its proof and the certificate
// gains a self-contained core sub-proof: the log, the assumption order, the
// lit->hard-indices map, and the failed subset — enough for a checker to
// validate the core without this solver.
void ExtractInternalCore(const ConstraintSystem& system, double timeout_seconds,
                         MaxSmtResult* result, Certificate* cert) {
  SatSolver sat;
  ProofLog core_log;
  if (cert != nullptr) {
    sat.SetProofLog(&core_log);
  }
  sat.SetDeadline(Deadline::After(timeout_seconds));
  SatSink sink{&sat};
  Tseitin<SatSink> tseitin(&sink, system);
  std::vector<Lit> assumptions;
  std::vector<std::vector<int64_t>> hards_by_assumption;
  std::unordered_map<int64_t, size_t> assumption_of;  // Lit key -> index.
  const std::vector<ExprId>& hards = system.hard();
  for (size_t i = 0; i < hards.size(); ++i) {
    std::optional<Lit> lit = tseitin.Encode(hards[i]);
    if (!lit.has_value()) {
      return;  // Not boolean-expressible; the solve path reported that.
    }
    int64_t key = static_cast<int64_t>(lit->var()) * 2 + (lit->negated() ? 1 : 0);
    auto [it, inserted] = assumption_of.try_emplace(key, assumptions.size());
    if (inserted) {
      assumptions.push_back(*lit);
      hards_by_assumption.emplace_back();
    }
    hards_by_assumption[it->second].push_back(static_cast<int64_t>(i));
  }
  if (sat.Solve(assumptions) != SatResult::kUnsat) {
    return;  // Timed out (or the Tseitin roots alone are level-0 unsat).
  }
  for (Lit failed : sat.UnsatCore()) {
    int64_t key = static_cast<int64_t>(failed.var()) * 2 + (failed.negated() ? 1 : 0);
    auto it = assumption_of.find(key);
    if (it != assumption_of.end()) {
      for (int64_t hard : hards_by_assumption[it->second]) {
        result->unsat_core.push_back(static_cast<int>(hard));
      }
    }
  }
  std::sort(result->unsat_core.begin(), result->unsat_core.end());
  if (cert != nullptr) {
    cert->core_events = core_log.TakeStream();  // The log dies with this call.
    cert->core_assumptions = assumptions;
    cert->core_hards = std::move(hards_by_assumption);
    cert->core_lits = sat.UnsatCore();
    // An assumption-core conclusion is the last event AnalyzeFinal logged; a
    // core-free UNSAT (root conflict) ends in an empty lemma instead and the
    // checker validates the whole sub-proof.
    cert->core_event =
        cert->core_lits.empty() ? -1
                                : static_cast<int64_t>(cert->core_events.size()) - 1;
    cert->reported_core.assign(result->unsat_core.begin(), result->unsat_core.end());
  }
}

// The CDCL engine accumulates statistics across Solve calls; a warm backend
// reporting per-solve numbers subtracts the totals it saw last run.
SatStats DiffSatStats(const SatStats& now, const SatStats& prev) {
  SatStats d;
  d.decisions = now.decisions - prev.decisions;
  d.propagations = now.propagations - prev.propagations;
  d.conflicts = now.conflicts - prev.conflicts;
  d.restarts = now.restarts - prev.restarts;
  d.learnt_deleted = now.learnt_deleted - prev.learnt_deleted;
  d.learnt_literals = now.learnt_literals - prev.learnt_literals;
  d.activity_rescales = now.activity_rescales - prev.activity_rescales;
  d.heap_picks = now.heap_picks - prev.heap_picks;
  d.fallback_picks = now.fallback_picks - prev.fallback_picks;
  return d;
}

MaxSatStats DiffMaxSatStats(const MaxSatStats& now, const MaxSatStats& prev) {
  MaxSatStats d;
  d.cores = now.cores - prev.cores;
  d.sat_calls = now.sat_calls - prev.sat_calls;
  return d;
}

// Copies the CDCL/MaxSAT engine's per-solve statistics onto the result (for
// per-problem reports) and accumulates them into the global registry (for
// run-wide totals). The solver keeps plain local counters on its hot path;
// this once-per-solve flush is the only registry traffic.
void FlushSolverCounters(const SatStats& sat, const MaxSatStats& wpm,
                         MaxSmtResult* result) {
  result->solver_counters = {
      {"cdcl.decisions", static_cast<double>(sat.decisions)},
      {"cdcl.propagations", static_cast<double>(sat.propagations)},
      {"cdcl.conflicts", static_cast<double>(sat.conflicts)},
      {"cdcl.restarts", static_cast<double>(sat.restarts)},
      {"cdcl.learnt_deleted", static_cast<double>(sat.learnt_deleted)},
      {"cdcl.learnt_literals", static_cast<double>(sat.learnt_literals)},
      {"cdcl.activity_rescales", static_cast<double>(sat.activity_rescales)},
      {"cdcl.heap_picks", static_cast<double>(sat.heap_picks)},
      {"cdcl.fallback_picks", static_cast<double>(sat.fallback_picks)},
      {"maxsat.cores", static_cast<double>(wpm.cores)},
      {"maxsat.sat_calls", static_cast<double>(wpm.sat_calls)},
  };
  obs::Registry& registry = obs::CurrentRegistry();
  for (const auto& [name, value] : result->solver_counters) {
    registry.counter(name).Add(static_cast<int64_t>(value));
  }
  registry.counter("solver.internal_solves").Increment();
}

// Fills the clausal part of a certificate from the engine state after a
// solve: the proof events, the MaxSAT layer's entry watermarks + soft
// inventory, and the Fu-Malik iteration trail. A cold solve's log dies with
// the call, so the certificate steals it (`take_log`); a warm session log
// must survive for the next solve and is copied (three flat memcpys).
void FillClausalCertificate(Certificate* cert, const std::string& backend,
                            Certificate::Claim claim, const MaxSatSolver& maxsat,
                            ProofLog* log, bool take_log, bool cold) {
  cert->kind = Certificate::Kind::kClausal;
  cert->claim = claim;
  cert->backend = backend;
  cert->cold = cold;
  cert->events = take_log ? log->TakeStream() : log->stream();
  const MaxSatSolver::CertTrail& trail = maxsat.cert_trail();
  cert->baseline_vars = trail.baseline_vars;
  cert->baseline_events = trail.baseline_events;
  cert->softs = trail.softs;
  cert->iterations = trail.iterations;
}

class InternalBackend final : public MaxSmtBackend {
 public:
  MaxSmtResult Solve(const ConstraintSystem& system, double timeout_seconds) override {
    return DoSolve(system, timeout_seconds, /*certify=*/false);
  }

  MaxSmtResult SolveCertified(const ConstraintSystem& system,
                              double timeout_seconds) override {
    return DoSolve(system, timeout_seconds, /*certify=*/true);
  }

  std::string name() const override { return "internal-maxsat"; }

 private:
  MaxSmtResult DoSolve(const ConstraintSystem& system, double timeout_seconds,
                       bool certify) {
    MaxSmtResult result;
    result.backend = name();
    obs::StageSpan span("solver.internal");
    if (system.HasIntegers()) {
      result.status = MaxSmtResult::Status::kUnsupported;
      result.message = "integer constraints require the Z3 backend";
      return result;
    }
    MaxSatSolver maxsat;
    ProofLog log;
    std::shared_ptr<Certificate> cert;
    if (certify) {
      cert = std::make_shared<Certificate>();
      // Attach before the Tseitin constructor: the encoding itself must be
      // part of the logged input inventory.
      maxsat.SetProofLog(&log);
    }
    maxsat.SetDeadline(Deadline::After(timeout_seconds));
    Tseitin<MaxSatSolver> tseitin(&maxsat, system);
    for (ExprId hard : system.hard()) {
      std::optional<Lit> lit = tseitin.Encode(hard);
      if (!lit.has_value()) {
        result.status = MaxSmtResult::Status::kUnsupported;
        result.message = "expression not expressible in the boolean fragment";
        return result;
      }
      maxsat.AddHard({*lit});
    }
    for (const SoftConstraint& soft : system.soft()) {
      std::optional<Lit> lit = tseitin.Encode(soft.expr);
      if (!lit.has_value()) {
        result.status = MaxSmtResult::Status::kUnsupported;
        result.message = "expression not expressible in the boolean fragment";
        return result;
      }
      maxsat.AddSoft({*lit}, soft.weight);
    }

    std::optional<MaxSatSolver::Solution> solution = maxsat.Solve();
    FlushSolverCounters(maxsat.sat_stats(), maxsat.stats(), &result);
    if (!solution.has_value()) {
      if (maxsat.TimedOut()) {
        result.status = MaxSmtResult::Status::kTimeout;
        result.message = "CDCL search abandoned at the time limit";
      } else {
        result.status = MaxSmtResult::Status::kUnsat;
        if (certify) {
          FillClausalCertificate(cert.get(), name(), Certificate::Claim::kUnsat,
                                 maxsat, &log, /*take_log=*/true, /*cold=*/true);
        }
        ExtractInternalCore(system, timeout_seconds, &result, cert.get());
        result.certificate = cert;
      }
      return result;
    }
    result.status = MaxSmtResult::Status::kOptimal;
    result.cost = solution->cost;
    result.bool_values.resize(static_cast<size_t>(system.BoolCount()));
    for (BVarId v = 0; v < system.BoolCount(); ++v) {
      result.bool_values[static_cast<size_t>(v)] = solution->model[static_cast<size_t>(v)];
    }
    // Provenance: which softs the optimum sacrificed.
    const std::vector<SoftConstraint>& softs = system.soft();
    for (size_t i = 0; i < softs.size(); ++i) {
      if (!system.EvalOnModel(softs[i].expr, result.bool_values, result.int_values)) {
        result.violated_soft.push_back(static_cast<int>(i));
      }
    }
    if (certify) {
      FillClausalCertificate(cert.get(), name(), Certificate::Claim::kOptimal,
                             maxsat, &log, /*take_log=*/true, /*cold=*/true);
      cert->cost = solution->cost;
      cert->model = solution->model;
      result.certificate = cert;
    }
    return result;
  }
};

// Warm-start variant for incremental re-repair: keeps the CDCL solver (with
// its learnt clauses and Tseitin encoding of the hard constraints) alive
// between Solve calls. A re-solve whose system carries the same
// HardFingerprint skips re-encoding everything but the softs — unit soft
// clauses are their own selectors, so a warm run adds zero new clauses —
// and restarts the search from the learnt state (PR 5's assumption
// machinery: softs are enforced via assumptions, never baked-in clauses).
// Any mismatch, timeout, UNSAT, or unsupported system drops the state and
// falls back to a cold solve; warmth is a pure accelerator.
//
// Certified warm solves keep one ProofLog alive with the state: the log
// spans the whole session, each solve records its entry watermarks, and the
// certificate ships the full history (cold == false marks that the baseline
// prefix is session history, not a fresh encoding).
class WarmInternalBackend final : public MaxSmtBackend {
 public:
  MaxSmtResult Solve(const ConstraintSystem& system, double timeout_seconds) override {
    return DoSolve(system, timeout_seconds, /*certify=*/false);
  }

  MaxSmtResult SolveCertified(const ConstraintSystem& system,
                              double timeout_seconds) override {
    return DoSolve(system, timeout_seconds, /*certify=*/true);
  }

  std::string name() const override { return "internal-maxsat"; }

 private:
  MaxSmtResult DoSolve(const ConstraintSystem& system, double timeout_seconds,
                       bool certify) {
    MaxSmtResult result;
    result.backend = name();
    obs::StageSpan span("solver.internal");
    if (system.HasIntegers()) {
      state_.reset();
      result.status = MaxSmtResult::Status::kUnsupported;
      result.message = "integer constraints require the Z3 backend";
      return result;
    }
    const uint64_t fingerprint = system.HardFingerprint();
    // A state built without a log cannot certify (its input inventory was
    // never recorded); rebuild cold rather than emit an unauditable cert.
    const bool warm = state_ != nullptr && state_->fingerprint == fingerprint &&
                      (!certify || state_->log != nullptr);
    if (!warm) {
      state_.reset();
      state_ = std::make_unique<State>();
      state_->fingerprint = fingerprint;
      if (certify) {
        state_->log = std::make_unique<ProofLog>();
        state_->maxsat.SetProofLog(state_->log.get());
      }
      state_->tseitin =
          std::make_unique<Tseitin<MaxSatSolver>>(&state_->maxsat, system);
      for (ExprId hard : system.hard()) {
        std::optional<Lit> lit = state_->tseitin->Encode(hard);
        if (!lit.has_value()) {
          state_.reset();
          result.status = MaxSmtResult::Status::kUnsupported;
          result.message = "expression not expressible in the boolean fragment";
          return result;
        }
        state_->maxsat.AddHard({*lit});
      }
    } else {
      state_->tseitin->Rebind(system);
      state_->maxsat.ResetSofts();
    }
    state_->maxsat.SetDeadline(Deadline::After(timeout_seconds));
    for (const SoftConstraint& soft : system.soft()) {
      std::optional<Lit> lit = state_->tseitin->Encode(soft.expr);
      if (!lit.has_value()) {
        state_.reset();
        result.status = MaxSmtResult::Status::kUnsupported;
        result.message = "expression not expressible in the boolean fragment";
        return result;
      }
      state_->maxsat.AddSoft({*lit}, soft.weight);
    }

    const bool log_active = certify && state_->log != nullptr;
    std::optional<MaxSatSolver::Solution> solution = state_->maxsat.Solve();
    FlushSolverCounters(DiffSatStats(state_->maxsat.sat_stats(), state_->sat_base),
                        DiffMaxSatStats(state_->maxsat.stats(), state_->wpm_base),
                        &result);
    result.solver_counters.emplace_back(warm ? "warm.hit" : "warm.miss", 1.0);
    if (!solution.has_value()) {
      if (state_->maxsat.TimedOut()) {
        result.status = MaxSmtResult::Status::kTimeout;
        result.message = "CDCL search abandoned at the time limit";
      } else {
        result.status = MaxSmtResult::Status::kUnsat;
        std::shared_ptr<Certificate> cert;
        if (log_active) {
          cert = std::make_shared<Certificate>();
          // The state is dropped below (UNSAT never warms), so the session
          // log can be stolen too.
          FillClausalCertificate(cert.get(), name(), Certificate::Claim::kUnsat,
                                 state_->maxsat, state_->log.get(),
                                 /*take_log=*/true, /*cold=*/!warm);
        }
        ExtractInternalCore(system, timeout_seconds, &result, cert.get());
        result.certificate = cert;
      }
      // A timed-out or UNSAT solver state is not a base worth warming: the
      // next run cold-starts.
      state_.reset();
      return result;
    }
    state_->sat_base = state_->maxsat.sat_stats();
    state_->wpm_base = state_->maxsat.stats();
    result.status = MaxSmtResult::Status::kOptimal;
    result.cost = solution->cost;
    result.bool_values.resize(static_cast<size_t>(system.BoolCount()));
    for (BVarId v = 0; v < system.BoolCount(); ++v) {
      result.bool_values[static_cast<size_t>(v)] = solution->model[static_cast<size_t>(v)];
    }
    const std::vector<SoftConstraint>& softs = system.soft();
    for (size_t i = 0; i < softs.size(); ++i) {
      if (!system.EvalOnModel(softs[i].expr, result.bool_values, result.int_values)) {
        result.violated_soft.push_back(static_cast<int>(i));
      }
    }
    if (log_active) {
      auto cert = std::make_shared<Certificate>();
      FillClausalCertificate(cert.get(), name(), Certificate::Claim::kOptimal,
                             state_->maxsat, state_->log.get(),
                             /*take_log=*/false, /*cold=*/!warm);
      cert->cost = solution->cost;
      cert->model = solution->model;
      result.certificate = cert;
    }
    return result;
  }

  struct State {
    MaxSatSolver maxsat;
    // Points into the system of the *current* Solve call only; Rebind runs
    // before any dereference on the next call.
    std::unique_ptr<Tseitin<MaxSatSolver>> tseitin;
    // Session-lifetime proof log; non-null iff the state was built by a
    // certified solve.
    std::unique_ptr<ProofLog> log;
    uint64_t fingerprint = 0;
    // Cumulative engine statistics as of the last completed solve, so
    // per-solve counters report deltas.
    SatStats sat_base;
    MaxSatStats wpm_base;
  };
  std::unique_ptr<State> state_;
};

}  // namespace

std::unique_ptr<MaxSmtBackend> MakeInternalBackend() {
  return std::make_unique<InternalBackend>();
}

std::unique_ptr<MaxSmtBackend> MakeWarmInternalBackend() {
  return std::make_unique<WarmInternalBackend>();
}

}  // namespace cpr
