// MaxSMT backend on the homegrown CDCL/MaxSAT stack.
//
// Boolean expressions are Tseitin-encoded: every composite node gets a
// definition literal equivalent to the node, hard constraints assert their
// root literal, and each soft constraint's root literal becomes a weighted
// unit soft clause. Integer atoms (PC4 cost constraints) are not expressible
// here; such systems are reported kUnsupported and the repair engine routes
// them to Z3.

#include <optional>
#include <unordered_map>
#include <vector>

#include "netbase/deadline.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "smt/maxsat.h"
#include "solver/backend.h"

namespace cpr {

namespace {

class Tseitin {
 public:
  Tseitin(MaxSatSolver* solver, const ConstraintSystem& system)
      : solver_(solver), system_(system) {
    // Decision variables occupy the first BoolCount() solver variables so
    // the model maps back by identity.
    for (BVarId v = 0; v < system.BoolCount(); ++v) {
      solver_->NewVar();
    }
    true_lit_ = Lit(solver_->NewVar(), false);
    solver_->AddHard({true_lit_});
  }

  // Definition literal for an expression: the literal is true in a model iff
  // the expression is.
  std::optional<Lit> Encode(ExprId id) {
    if (auto it = cache_.find(id); it != cache_.end()) {
      return it->second;
    }
    const ExprNode& n = system_.node(id);
    std::optional<Lit> lit;
    switch (n.kind) {
      case ExprKind::kTrue:
        lit = true_lit_;
        break;
      case ExprKind::kFalse:
        lit = ~true_lit_;
        break;
      case ExprKind::kBoolVar:
        lit = Lit(static_cast<BoolVar>(n.bool_var), false);
        break;
      case ExprKind::kNot: {
        std::optional<Lit> child = Encode(n.children[0]);
        if (child.has_value()) {
          lit = ~*child;
        }
        break;
      }
      case ExprKind::kAnd:
      case ExprKind::kOr: {
        std::vector<Lit> children;
        for (ExprId c : n.children) {
          std::optional<Lit> child = Encode(c);
          if (!child.has_value()) {
            return std::nullopt;
          }
          children.push_back(*child);
        }
        Lit def = Lit(solver_->NewVar(), false);
        if (n.kind == ExprKind::kAnd) {
          // def <-> AND(children)
          Clause back{def};
          for (Lit c : children) {
            solver_->AddHard({~def, c});
            back.push_back(~c);
          }
          solver_->AddHard(std::move(back));
        } else {
          // def <-> OR(children)
          Clause fwd{~def};
          for (Lit c : children) {
            solver_->AddHard({~c, def});
            fwd.push_back(c);
          }
          solver_->AddHard(std::move(fwd));
        }
        lit = def;
        break;
      }
      case ExprKind::kLinearLe:
      case ExprKind::kLinearEq:
        return std::nullopt;  // Integers are Z3-only.
    }
    if (lit.has_value()) {
      cache_.emplace(id, *lit);
    }
    return lit;
  }

 private:
  MaxSatSolver* solver_;
  const ConstraintSystem& system_;
  Lit true_lit_ = kUndefLit;
  std::unordered_map<ExprId, Lit> cache_;
};

// Copies the CDCL/MaxSAT engine's per-solve statistics onto the result (for
// per-problem reports) and accumulates them into the global registry (for
// run-wide totals). The solver keeps plain local counters on its hot path;
// this once-per-solve flush is the only registry traffic.
void FlushSolverCounters(const MaxSatSolver& maxsat, MaxSmtResult* result) {
  const SatStats& sat = maxsat.sat_stats();
  const MaxSatStats& wpm = maxsat.stats();
  result->solver_counters = {
      {"cdcl.decisions", static_cast<double>(sat.decisions)},
      {"cdcl.propagations", static_cast<double>(sat.propagations)},
      {"cdcl.conflicts", static_cast<double>(sat.conflicts)},
      {"cdcl.restarts", static_cast<double>(sat.restarts)},
      {"cdcl.learnt_deleted", static_cast<double>(sat.learnt_deleted)},
      {"cdcl.learnt_literals", static_cast<double>(sat.learnt_literals)},
      {"cdcl.activity_rescales", static_cast<double>(sat.activity_rescales)},
      {"cdcl.heap_picks", static_cast<double>(sat.heap_picks)},
      {"cdcl.fallback_picks", static_cast<double>(sat.fallback_picks)},
      {"maxsat.cores", static_cast<double>(wpm.cores)},
      {"maxsat.sat_calls", static_cast<double>(wpm.sat_calls)},
  };
  obs::Registry& registry = obs::Registry::Global();
  for (const auto& [name, value] : result->solver_counters) {
    registry.counter(name).Add(static_cast<int64_t>(value));
  }
  registry.counter("solver.internal_solves").Increment();
}

class InternalBackend final : public MaxSmtBackend {
 public:
  MaxSmtResult Solve(const ConstraintSystem& system, double timeout_seconds) override {
    MaxSmtResult result;
    result.backend = name();
    obs::StageSpan span("solver.internal");
    if (system.HasIntegers()) {
      result.status = MaxSmtResult::Status::kUnsupported;
      result.message = "integer constraints require the Z3 backend";
      return result;
    }
    MaxSatSolver maxsat;
    maxsat.SetDeadline(Deadline::After(timeout_seconds));
    Tseitin tseitin(&maxsat, system);
    for (ExprId hard : system.hard()) {
      std::optional<Lit> lit = tseitin.Encode(hard);
      if (!lit.has_value()) {
        result.status = MaxSmtResult::Status::kUnsupported;
        result.message = "expression not expressible in the boolean fragment";
        return result;
      }
      maxsat.AddHard({*lit});
    }
    for (const SoftConstraint& soft : system.soft()) {
      std::optional<Lit> lit = tseitin.Encode(soft.expr);
      if (!lit.has_value()) {
        result.status = MaxSmtResult::Status::kUnsupported;
        result.message = "expression not expressible in the boolean fragment";
        return result;
      }
      maxsat.AddSoft({*lit}, soft.weight);
    }

    std::optional<MaxSatSolver::Solution> solution = maxsat.Solve();
    FlushSolverCounters(maxsat, &result);
    if (!solution.has_value()) {
      if (maxsat.TimedOut()) {
        result.status = MaxSmtResult::Status::kTimeout;
        result.message = "CDCL search abandoned at the time limit";
      } else {
        result.status = MaxSmtResult::Status::kUnsat;
      }
      return result;
    }
    result.status = MaxSmtResult::Status::kOptimal;
    result.cost = solution->cost;
    result.bool_values.resize(static_cast<size_t>(system.BoolCount()));
    for (BVarId v = 0; v < system.BoolCount(); ++v) {
      result.bool_values[static_cast<size_t>(v)] = solution->model[static_cast<size_t>(v)];
    }
    return result;
  }

  std::string name() const override { return "internal-maxsat"; }
};

}  // namespace

std::unique_ptr<MaxSmtBackend> MakeInternalBackend() {
  return std::make_unique<InternalBackend>();
}

}  // namespace cpr
