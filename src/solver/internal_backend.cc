// MaxSMT backend on the homegrown CDCL/MaxSAT stack.
//
// Boolean expressions are Tseitin-encoded: every composite node gets a
// definition literal equivalent to the node, hard constraints assert their
// root literal, and each soft constraint's root literal becomes a weighted
// unit soft clause. Integer atoms (PC4 cost constraints) are not expressible
// here; such systems are reported kUnsupported and the repair engine routes
// them to Z3.

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "netbase/deadline.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "smt/maxsat.h"
#include "solver/backend.h"

namespace cpr {

namespace {

// Templated over the clause sink so the same encoder serves both the
// MaxSatSolver solve path and the plain-SatSolver unsat-core path. `Solver`
// needs NewVar() -> BoolVar and AddHard(Clause).
template <typename Solver>
class Tseitin {
 public:
  Tseitin(Solver* solver, const ConstraintSystem& system)
      : solver_(solver), system_(system) {
    // Decision variables occupy the first BoolCount() solver variables so
    // the model maps back by identity.
    for (BVarId v = 0; v < system.BoolCount(); ++v) {
      solver_->NewVar();
    }
    true_lit_ = Lit(solver_->NewVar(), false);
    solver_->AddHard({true_lit_});
  }

  // Definition literal for an expression: the literal is true in a model iff
  // the expression is.
  std::optional<Lit> Encode(ExprId id) {
    if (auto it = cache_.find(id); it != cache_.end()) {
      return it->second;
    }
    const ExprNode& n = system_.node(id);
    std::optional<Lit> lit;
    switch (n.kind) {
      case ExprKind::kTrue:
        lit = true_lit_;
        break;
      case ExprKind::kFalse:
        lit = ~true_lit_;
        break;
      case ExprKind::kBoolVar:
        lit = Lit(static_cast<BoolVar>(n.bool_var), false);
        break;
      case ExprKind::kNot: {
        std::optional<Lit> child = Encode(n.children[0]);
        if (child.has_value()) {
          lit = ~*child;
        }
        break;
      }
      case ExprKind::kAnd:
      case ExprKind::kOr: {
        std::vector<Lit> children;
        for (ExprId c : n.children) {
          std::optional<Lit> child = Encode(c);
          if (!child.has_value()) {
            return std::nullopt;
          }
          children.push_back(*child);
        }
        Lit def = Lit(solver_->NewVar(), false);
        if (n.kind == ExprKind::kAnd) {
          // def <-> AND(children)
          Clause back{def};
          for (Lit c : children) {
            solver_->AddHard({~def, c});
            back.push_back(~c);
          }
          solver_->AddHard(std::move(back));
        } else {
          // def <-> OR(children)
          Clause fwd{~def};
          for (Lit c : children) {
            solver_->AddHard({~c, def});
            fwd.push_back(c);
          }
          solver_->AddHard(std::move(fwd));
        }
        lit = def;
        break;
      }
      case ExprKind::kLinearLe:
      case ExprKind::kLinearEq:
        return std::nullopt;  // Integers are Z3-only.
    }
    if (lit.has_value()) {
      cache_.emplace(id, *lit);
    }
    return lit;
  }

 private:
  Solver* solver_;
  const ConstraintSystem& system_;
  Lit true_lit_ = kUndefLit;
  std::unordered_map<ExprId, Lit> cache_;
};

// Adapts SatSolver to the Tseitin clause-sink interface.
struct SatSink {
  SatSolver* sat;
  BoolVar NewVar() { return sat->NewVar(); }
  void AddHard(Clause clause) { sat->AddClause(std::move(clause)); }
};

// Assumption-based unsat core for an UNSAT system: re-encode the hard
// constraints into a fresh SAT solver, assume every hard root literal, and
// map the failed-assumption subset back to hard-constraint indices. The
// shared Tseitin cache can hand two hard constraints the same root literal;
// the core then lists both (a correct, if less minimal, core).
void ExtractInternalCore(const ConstraintSystem& system, double timeout_seconds,
                         MaxSmtResult* result) {
  SatSolver sat;
  sat.SetDeadline(Deadline::After(timeout_seconds));
  SatSink sink{&sat};
  Tseitin<SatSink> tseitin(&sink, system);
  std::vector<Lit> assumptions;
  std::unordered_map<int64_t, std::vector<int>> owners;  // Lit key -> hards.
  const std::vector<ExprId>& hards = system.hard();
  for (size_t i = 0; i < hards.size(); ++i) {
    std::optional<Lit> lit = tseitin.Encode(hards[i]);
    if (!lit.has_value()) {
      return;  // Not boolean-expressible; the solve path reported that.
    }
    int64_t key = static_cast<int64_t>(lit->var()) * 2 + (lit->negated() ? 1 : 0);
    auto [it, inserted] = owners.try_emplace(key);
    if (inserted) {
      assumptions.push_back(*lit);
    }
    it->second.push_back(static_cast<int>(i));
  }
  if (sat.Solve(assumptions) != SatResult::kUnsat) {
    return;  // Timed out (or the Tseitin roots alone are level-0 unsat).
  }
  for (Lit failed : sat.UnsatCore()) {
    int64_t key = static_cast<int64_t>(failed.var()) * 2 + (failed.negated() ? 1 : 0);
    auto it = owners.find(key);
    if (it != owners.end()) {
      result->unsat_core.insert(result->unsat_core.end(), it->second.begin(),
                                it->second.end());
    }
  }
  std::sort(result->unsat_core.begin(), result->unsat_core.end());
}

// Copies the CDCL/MaxSAT engine's per-solve statistics onto the result (for
// per-problem reports) and accumulates them into the global registry (for
// run-wide totals). The solver keeps plain local counters on its hot path;
// this once-per-solve flush is the only registry traffic.
void FlushSolverCounters(const MaxSatSolver& maxsat, MaxSmtResult* result) {
  const SatStats& sat = maxsat.sat_stats();
  const MaxSatStats& wpm = maxsat.stats();
  result->solver_counters = {
      {"cdcl.decisions", static_cast<double>(sat.decisions)},
      {"cdcl.propagations", static_cast<double>(sat.propagations)},
      {"cdcl.conflicts", static_cast<double>(sat.conflicts)},
      {"cdcl.restarts", static_cast<double>(sat.restarts)},
      {"cdcl.learnt_deleted", static_cast<double>(sat.learnt_deleted)},
      {"cdcl.learnt_literals", static_cast<double>(sat.learnt_literals)},
      {"cdcl.activity_rescales", static_cast<double>(sat.activity_rescales)},
      {"cdcl.heap_picks", static_cast<double>(sat.heap_picks)},
      {"cdcl.fallback_picks", static_cast<double>(sat.fallback_picks)},
      {"maxsat.cores", static_cast<double>(wpm.cores)},
      {"maxsat.sat_calls", static_cast<double>(wpm.sat_calls)},
  };
  obs::Registry& registry = obs::CurrentRegistry();
  for (const auto& [name, value] : result->solver_counters) {
    registry.counter(name).Add(static_cast<int64_t>(value));
  }
  registry.counter("solver.internal_solves").Increment();
}

class InternalBackend final : public MaxSmtBackend {
 public:
  MaxSmtResult Solve(const ConstraintSystem& system, double timeout_seconds) override {
    MaxSmtResult result;
    result.backend = name();
    obs::StageSpan span("solver.internal");
    if (system.HasIntegers()) {
      result.status = MaxSmtResult::Status::kUnsupported;
      result.message = "integer constraints require the Z3 backend";
      return result;
    }
    MaxSatSolver maxsat;
    maxsat.SetDeadline(Deadline::After(timeout_seconds));
    Tseitin<MaxSatSolver> tseitin(&maxsat, system);
    for (ExprId hard : system.hard()) {
      std::optional<Lit> lit = tseitin.Encode(hard);
      if (!lit.has_value()) {
        result.status = MaxSmtResult::Status::kUnsupported;
        result.message = "expression not expressible in the boolean fragment";
        return result;
      }
      maxsat.AddHard({*lit});
    }
    for (const SoftConstraint& soft : system.soft()) {
      std::optional<Lit> lit = tseitin.Encode(soft.expr);
      if (!lit.has_value()) {
        result.status = MaxSmtResult::Status::kUnsupported;
        result.message = "expression not expressible in the boolean fragment";
        return result;
      }
      maxsat.AddSoft({*lit}, soft.weight);
    }

    std::optional<MaxSatSolver::Solution> solution = maxsat.Solve();
    FlushSolverCounters(maxsat, &result);
    if (!solution.has_value()) {
      if (maxsat.TimedOut()) {
        result.status = MaxSmtResult::Status::kTimeout;
        result.message = "CDCL search abandoned at the time limit";
      } else {
        result.status = MaxSmtResult::Status::kUnsat;
        ExtractInternalCore(system, timeout_seconds, &result);
      }
      return result;
    }
    result.status = MaxSmtResult::Status::kOptimal;
    result.cost = solution->cost;
    result.bool_values.resize(static_cast<size_t>(system.BoolCount()));
    for (BVarId v = 0; v < system.BoolCount(); ++v) {
      result.bool_values[static_cast<size_t>(v)] = solution->model[static_cast<size_t>(v)];
    }
    // Provenance: which softs the optimum sacrificed.
    const std::vector<SoftConstraint>& softs = system.soft();
    for (size_t i = 0; i < softs.size(); ++i) {
      if (!system.EvalOnModel(softs[i].expr, result.bool_values, result.int_values)) {
        result.violated_soft.push_back(static_cast<int>(i));
      }
    }
    return result;
  }

  std::string name() const override { return "internal-maxsat"; }
};

}  // namespace

std::unique_ptr<MaxSmtBackend> MakeInternalBackend() {
  return std::make_unique<InternalBackend>();
}

}  // namespace cpr
