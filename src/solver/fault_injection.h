// Deterministic fault injection for the solver layer.
//
// FaultInjectingBackend decorates any MaxSmtBackend and, according to a
// seeded FaultInjectionSpec, replaces solve calls with degraded outcomes:
// timeouts, unsat verdicts, artificially slow solves, or thrown exceptions.
// The repair tests use it to drive every degraded path (retry, failover,
// partial repair, error isolation) without depending on real solver
// hardness, and `cpr repair --inject-fault <spec>` exposes it for manual
// chaos testing.
//
// Spec grammar (parsed by FaultInjectionSpec::Parse):
//
//   kind[:key=value]...
//
//   kind  = timeout | unsat | slow | throw
//         | corrupt-proof | flip-model | drop-core
//   keys  = p=<0..1>     per-call injection probability (default 1)
//           seed=<u32>   RNG seed (default 1)
//           max=<n>      stop injecting after n faults (default unlimited)
//           slow=<sec>   added latency for kind=slow (default 0.05)
//
// Examples: "timeout:max=1" (first call times out, rest solve normally),
// "throw:p=0.25:seed=7" (a quarter of calls throw, reproducibly).
//
// Injection draws come from a private seeded generator, so a given spec
// produces the same fault sequence on every run of a single-threaded
// repair. Each worker thread owns its own decorated backend instance and
// therefore its own deterministic sequence.
//
// The certificate kinds corrupt the *evidence* of an otherwise genuine
// certified solve instead of degrading the solve: corrupt-proof mutilates
// the clausal proof (drops the learnt lemmas of an UNSAT proof, flips a
// core-lemma literal of an optimality proof), flip-model flips a
// cost-relevant witness bit in both the certificate and the result, and
// drop-core removes a literal from the unsat-core conclusion. They exercise
// the certify regression contract: every such corruption must be caught by
// the independent checker and demoted to failover, never shipped. Inject
// them below the certifying wrapper (the repair engine's MakeWorkerBackend
// does) or the corruption is invisible to the checker.

#ifndef CPR_SRC_SOLVER_FAULT_INJECTION_H_
#define CPR_SRC_SOLVER_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "netbase/result.h"
#include "solver/backend.h"

namespace cpr {

struct FaultInjectionSpec {
  enum class Kind {
    kNone,          // Pass-through (the default; injection disabled).
    kTimeout,       // Return MaxSmtResult::Status::kTimeout without solving.
    kUnsat,         // Return MaxSmtResult::Status::kUnsat without solving.
    kSlow,          // Sleep slow_seconds, then solve normally.
    kThrow,         // Throw std::runtime_error from Solve.
    kCorruptProof,  // Solve normally, then mutilate the clausal proof.
    kFlipModel,     // Solve normally, then flip a witness-model bit.
    kDropCore,      // Solve normally, then drop an unsat-core literal.
  };

  Kind kind = Kind::kNone;
  double probability = 1.0;
  uint32_t seed = 1;
  int max_injections = -1;  // < 0 means unlimited.
  double slow_seconds = 0.05;

  bool enabled() const { return kind != Kind::kNone; }

  static Result<FaultInjectionSpec> Parse(const std::string& text);
  std::string ToString() const;
};

std::unique_ptr<MaxSmtBackend> MakeFaultInjectingBackend(
    std::unique_ptr<MaxSmtBackend> inner, const FaultInjectionSpec& spec);

}  // namespace cpr

#endif  // CPR_SRC_SOLVER_FAULT_INJECTION_H_
