// Fault-isolating MaxSMT backend decorator.
//
// Wraps a primary (and optionally a secondary) backend behind the plain
// MaxSmtBackend interface and adds the degraded-mode policies the repair
// engine relies on:
//
//   * kUnsupported from the primary fails over to the secondary (the repair
//     engine pairs the internal backend with Z3 so integer-bearing problems
//     still solve).
//   * kTimeout retries with an escalated timeout (policy.backoff, capped by
//     policy.max_timeout_seconds and the shared wall-clock deadline), up to
//     policy.max_retries extra attempts per backend.
//   * Any exception a backend throws is caught and converted to
//     MaxSmtResult::Status::kError — a worker thread never terminates.
//
// The returned MaxSmtResult carries provenance: `backend` names the engine
// that produced the final answer and `attempts` counts every solve call made
// across retries and failover.

#ifndef CPR_SRC_SOLVER_FAILOVER_H_
#define CPR_SRC_SOLVER_FAILOVER_H_

#include <memory>

#include "netbase/deadline.h"
#include "solver/backend.h"

namespace cpr {

struct FailoverPolicy {
  // Extra attempts after a timeout, per backend.
  int max_retries = 1;
  // Timeout escalation factor applied on each retry.
  double backoff = 2.0;
  // Cap on the escalated per-call timeout; <= 0 means uncapped.
  double max_timeout_seconds = 0;
  // Shared wall-clock budget; retries never schedule past it.
  Deadline deadline;
};

// `secondary` may be null, in which case kUnsupported is returned as-is.
std::unique_ptr<MaxSmtBackend> MakeFailoverBackend(
    std::unique_ptr<MaxSmtBackend> primary, std::unique_ptr<MaxSmtBackend> secondary,
    const FailoverPolicy& policy = {});

}  // namespace cpr

#endif  // CPR_SRC_SOLVER_FAILOVER_H_
