// Backend-neutral MaxSMT constraint intermediate representation.
//
// The repair encoder (src/repair) emits its Figure-5 formulation into this
// IR; a backend then solves it. The IR covers exactly what CPR needs:
//
//  * boolean structure (vars, not/and/or/implies/iff) over
//  * optional integer linear atoms (sum of coef*int_var + const {<=,==} 0),
//    used only by the PC4 edge-cost constraints, and
//  * weighted soft constraints (arbitrary boolean expressions).
//
// Expressions are nodes in an arena indexed by ExprId; sharing subtrees is
// free, and backends translate by a single postorder walk.

#ifndef CPR_SRC_SOLVER_CONSTRAINT_SYSTEM_H_
#define CPR_SRC_SOLVER_CONSTRAINT_SYSTEM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cpr {

using BVarId = int32_t;
using IVarId = int32_t;
using ExprId = int32_t;

enum class ExprKind : uint8_t {
  kTrue,
  kFalse,
  kBoolVar,
  kNot,
  kAnd,
  kOr,
  kLinearLe,  // sum(terms) + constant <= 0
  kLinearEq,  // sum(terms) + constant == 0
};

struct LinearTerm {
  IVarId var = -1;
  int64_t coefficient = 1;
};

struct ExprNode {
  ExprKind kind = ExprKind::kTrue;
  BVarId bool_var = -1;             // kBoolVar
  std::vector<ExprId> children;     // kNot (1), kAnd, kOr
  std::vector<LinearTerm> terms;    // linear atoms
  int64_t constant = 0;             // linear atoms
};

struct IntVarInfo {
  std::string name;
  int64_t lower = 0;
  int64_t upper = 0;
};

struct SoftConstraint {
  ExprId expr = -1;
  int64_t weight = 1;
  // Provenance label: which repair construct this soft constraint keeps
  // (e.g. "adj:l3:p1-2"). Empty when the producer did not attach one.
  std::string label;
};

class ConstraintSystem {
 public:
  ConstraintSystem();

  BVarId NewBool(std::string name);
  IVarId NewInt(std::string name, int64_t lower, int64_t upper);

  ExprId True() const { return true_; }
  ExprId False() const { return false_; }
  ExprId Var(BVarId var);
  ExprId Not(ExprId e);
  ExprId And(std::vector<ExprId> children);
  ExprId Or(std::vector<ExprId> children);
  ExprId Implies(ExprId a, ExprId b) { return Or({Not(a), b}); }
  ExprId Iff(ExprId a, ExprId b);
  // The boolean constant `value` as an expression of `var`.
  ExprId VarEquals(BVarId var, bool value) { return value ? Var(var) : Not(Var(var)); }

  // sum(terms) + constant <= 0 / == 0.
  ExprId LinearLe(std::vector<LinearTerm> terms, int64_t constant);
  ExprId LinearEq(std::vector<LinearTerm> terms, int64_t constant);

  // `label` tags the constraint for provenance: policy id for hard
  // constraints, construct key for softs. Hard labels live in a parallel
  // vector so `hard()` stays a plain ExprId list for backends.
  void AddHard(ExprId e, std::string label = {}) {
    hard_.push_back(e);
    hard_labels_.push_back(label.empty() ? hard_context_ : std::move(label));
  }
  // Default label for AddHard calls that pass none — producers set it around
  // a group of constraints (e.g. one policy's encoding) instead of threading
  // a label through every call site.
  void SetHardLabelContext(std::string label) { hard_context_ = std::move(label); }
  void AddSoft(ExprId e, int64_t weight, std::string label = {}) {
    soft_.push_back(SoftConstraint{e, weight, std::move(label)});
  }

  // --- Introspection for backends and stats ---
  int BoolCount() const { return static_cast<int>(bool_names_.size()); }
  int IntCount() const { return static_cast<int>(int_vars_.size()); }
  const std::string& BoolName(BVarId v) const { return bool_names_[static_cast<size_t>(v)]; }
  const IntVarInfo& IntVar(IVarId v) const { return int_vars_[static_cast<size_t>(v)]; }
  const ExprNode& node(ExprId e) const { return nodes_[static_cast<size_t>(e)]; }
  const std::vector<ExprId>& hard() const { return hard_; }
  const std::string& HardLabel(size_t i) const { return hard_labels_[i]; }
  const std::vector<SoftConstraint>& soft() const { return soft_; }
  bool HasIntegers() const { return !int_vars_.empty(); }
  int64_t TotalSoftWeight() const;

  // Evaluates an expression against a candidate model (bool_values indexed
  // by BVarId, int_values by IVarId). Missing assignments read as
  // false / 0. Shared by backends (to report which softs a model violates)
  // and by the repair decoder.
  bool EvalOnModel(ExprId e, const std::vector<bool>& bool_values,
                   const std::vector<int64_t>& int_values) const;

  // FNV-1a digest of everything a warm-started solver keeps between runs:
  // the full expression arena, the bool/int variable universe (names and
  // integer bounds — backends assert bounds as hard constraints), and the
  // hard-constraint root list. Softs and labels are deliberately excluded;
  // two systems with equal fingerprints may differ only in their soft sets,
  // which is exactly what warm solving re-asserts per run.
  uint64_t HardFingerprint() const;

 private:
  ExprId AddNode(ExprNode node);

  std::vector<ExprNode> nodes_;
  std::vector<std::string> bool_names_;
  std::vector<IntVarInfo> int_vars_;
  std::vector<ExprId> hard_;
  std::vector<std::string> hard_labels_;  // Parallel to hard_.
  std::string hard_context_;
  std::vector<SoftConstraint> soft_;
  ExprId true_ = -1;
  ExprId false_ = -1;
  // Var(v) is memoized so the arena does not fill with duplicate leaves.
  std::vector<ExprId> var_exprs_;
};

}  // namespace cpr

#endif  // CPR_SRC_SOLVER_CONSTRAINT_SYSTEM_H_
