#include "solver/constraint_system.h"

#include <cassert>
#include <utility>

namespace cpr {

ConstraintSystem::ConstraintSystem() {
  ExprNode true_node;
  true_node.kind = ExprKind::kTrue;
  true_ = AddNode(std::move(true_node));
  ExprNode false_node;
  false_node.kind = ExprKind::kFalse;
  false_ = AddNode(std::move(false_node));
}

ExprId ConstraintSystem::AddNode(ExprNode node) {
  nodes_.push_back(std::move(node));
  return static_cast<ExprId>(nodes_.size() - 1);
}

BVarId ConstraintSystem::NewBool(std::string name) {
  bool_names_.push_back(std::move(name));
  var_exprs_.push_back(-1);
  return static_cast<BVarId>(bool_names_.size() - 1);
}

IVarId ConstraintSystem::NewInt(std::string name, int64_t lower, int64_t upper) {
  assert(lower <= upper);
  int_vars_.push_back(IntVarInfo{std::move(name), lower, upper});
  return static_cast<IVarId>(int_vars_.size() - 1);
}

ExprId ConstraintSystem::Var(BVarId var) {
  ExprId& memo = var_exprs_[static_cast<size_t>(var)];
  if (memo < 0) {
    ExprNode node;
    node.kind = ExprKind::kBoolVar;
    node.bool_var = var;
    memo = AddNode(std::move(node));
  }
  return memo;
}

ExprId ConstraintSystem::Not(ExprId e) {
  const ExprNode& child = node(e);
  if (child.kind == ExprKind::kTrue) {
    return false_;
  }
  if (child.kind == ExprKind::kFalse) {
    return true_;
  }
  if (child.kind == ExprKind::kNot) {
    return child.children[0];  // Double negation.
  }
  ExprNode n;
  n.kind = ExprKind::kNot;
  n.children = {e};
  return AddNode(std::move(n));
}

ExprId ConstraintSystem::And(std::vector<ExprId> children) {
  std::vector<ExprId> flat;
  for (ExprId c : children) {
    if (c == false_) {
      return false_;
    }
    if (c != true_) {
      flat.push_back(c);
    }
  }
  if (flat.empty()) {
    return true_;
  }
  if (flat.size() == 1) {
    return flat[0];
  }
  ExprNode n;
  n.kind = ExprKind::kAnd;
  n.children = std::move(flat);
  return AddNode(std::move(n));
}

ExprId ConstraintSystem::Or(std::vector<ExprId> children) {
  std::vector<ExprId> flat;
  for (ExprId c : children) {
    if (c == true_) {
      return true_;
    }
    if (c != false_) {
      flat.push_back(c);
    }
  }
  if (flat.empty()) {
    return false_;
  }
  if (flat.size() == 1) {
    return flat[0];
  }
  ExprNode n;
  n.kind = ExprKind::kOr;
  n.children = std::move(flat);
  return AddNode(std::move(n));
}

ExprId ConstraintSystem::Iff(ExprId a, ExprId b) {
  return And({Or({Not(a), b}), Or({Not(b), a})});
}

ExprId ConstraintSystem::LinearLe(std::vector<LinearTerm> terms, int64_t constant) {
  ExprNode n;
  n.kind = ExprKind::kLinearLe;
  n.terms = std::move(terms);
  n.constant = constant;
  return AddNode(std::move(n));
}

ExprId ConstraintSystem::LinearEq(std::vector<LinearTerm> terms, int64_t constant) {
  ExprNode n;
  n.kind = ExprKind::kLinearEq;
  n.terms = std::move(terms);
  n.constant = constant;
  return AddNode(std::move(n));
}

bool ConstraintSystem::EvalOnModel(ExprId e, const std::vector<bool>& bool_values,
                                   const std::vector<int64_t>& int_values) const {
  const ExprNode& n = node(e);
  switch (n.kind) {
    case ExprKind::kTrue:
      return true;
    case ExprKind::kFalse:
      return false;
    case ExprKind::kBoolVar: {
      size_t v = static_cast<size_t>(n.bool_var);
      return v < bool_values.size() && bool_values[v];
    }
    case ExprKind::kNot:
      return !EvalOnModel(n.children[0], bool_values, int_values);
    case ExprKind::kAnd:
      for (ExprId c : n.children) {
        if (!EvalOnModel(c, bool_values, int_values)) {
          return false;
        }
      }
      return true;
    case ExprKind::kOr:
      for (ExprId c : n.children) {
        if (EvalOnModel(c, bool_values, int_values)) {
          return true;
        }
      }
      return false;
    case ExprKind::kLinearLe:
    case ExprKind::kLinearEq: {
      int64_t sum = n.constant;
      for (const LinearTerm& term : n.terms) {
        size_t v = static_cast<size_t>(term.var);
        int64_t value = v < int_values.size() ? int_values[v] : 0;
        sum += term.coefficient * value;
      }
      return n.kind == ExprKind::kLinearLe ? sum <= 0 : sum == 0;
    }
  }
  return false;
}

uint64_t ConstraintSystem::HardFingerprint() const {
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis.
  auto mix = [&hash](uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (8 * i)) & 0xff;
      hash *= 1099511628211ull;  // FNV prime.
    }
  };
  auto mix_string = [&](const std::string& s) {
    mix(s.size());
    for (char c : s) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;
    }
  };
  mix(nodes_.size());
  for (const ExprNode& n : nodes_) {
    mix(static_cast<uint64_t>(n.kind));
    mix(static_cast<uint64_t>(n.bool_var));
    mix(n.children.size());
    for (ExprId c : n.children) {
      mix(static_cast<uint64_t>(c));
    }
    mix(n.terms.size());
    for (const LinearTerm& t : n.terms) {
      mix(static_cast<uint64_t>(t.var));
      mix(static_cast<uint64_t>(t.coefficient));
    }
    mix(static_cast<uint64_t>(n.constant));
  }
  mix(bool_names_.size());
  mix(int_vars_.size());
  for (const IntVarInfo& v : int_vars_) {
    mix_string(v.name);
    mix(static_cast<uint64_t>(v.lower));
    mix(static_cast<uint64_t>(v.upper));
  }
  mix(hard_.size());
  for (ExprId e : hard_) {
    mix(static_cast<uint64_t>(e));
  }
  return hash;
}

int64_t ConstraintSystem::TotalSoftWeight() const {
  int64_t total = 0;
  for (const SoftConstraint& s : soft_) {
    total += s.weight;
  }
  return total;
}

}  // namespace cpr
