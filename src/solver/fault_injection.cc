#include "solver/fault_injection.h"

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "netbase/string_util.h"
#include "obs/metrics.h"

namespace cpr {

namespace {

Result<FaultInjectionSpec::Kind> ParseKind(const std::string& word) {
  using Kind = FaultInjectionSpec::Kind;
  if (word == "none") {
    return Kind::kNone;
  }
  if (word == "timeout") {
    return Kind::kTimeout;
  }
  if (word == "unsat") {
    return Kind::kUnsat;
  }
  if (word == "slow") {
    return Kind::kSlow;
  }
  if (word == "throw") {
    return Kind::kThrow;
  }
  return Error("unknown fault kind '" + word + "' (timeout|unsat|slow|throw)");
}

class FaultInjectingBackend final : public MaxSmtBackend {
 public:
  FaultInjectingBackend(std::unique_ptr<MaxSmtBackend> inner, FaultInjectionSpec spec)
      : inner_(std::move(inner)), spec_(spec), rng_state_(spec.seed) {}

  MaxSmtResult Solve(const ConstraintSystem& system, double timeout_seconds) override {
    if (ShouldInject()) {
      MaxSmtResult result;
      result.backend = name();
      switch (spec_.kind) {
        case FaultInjectionSpec::Kind::kTimeout:
          result.status = MaxSmtResult::Status::kTimeout;
          result.message = "injected timeout";
          return result;
        case FaultInjectionSpec::Kind::kUnsat:
          result.status = MaxSmtResult::Status::kUnsat;
          result.message = "injected unsat";
          return result;
        case FaultInjectionSpec::Kind::kThrow:
          throw std::runtime_error("injected backend exception");
        case FaultInjectionSpec::Kind::kSlow:
          std::this_thread::sleep_for(
              std::chrono::duration<double>(spec_.slow_seconds));
          break;  // Then solve normally.
        case FaultInjectionSpec::Kind::kNone:
          break;
      }
    }
    return inner_->Solve(system, timeout_seconds);
  }

  std::string name() const override { return inner_->name() + "+fault"; }

 private:
  bool ShouldInject() {
    if (!spec_.enabled()) {
      return false;
    }
    if (spec_.max_injections >= 0 && injected_ >= spec_.max_injections) {
      return false;
    }
    if (NextUniform() >= spec_.probability) {
      return false;
    }
    ++injected_;
    obs::CurrentRegistry().counter("solver.faults_injected").Increment();
    return true;
  }

  // splitmix64: tiny, seeded, platform-independent — injection sequences
  // must be reproducible across standard libraries.
  double NextUniform() {
    uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) / 9007199254740992.0;  // [0, 1)
  }

  std::unique_ptr<MaxSmtBackend> inner_;
  FaultInjectionSpec spec_;
  uint64_t rng_state_;
  int injected_ = 0;
};

}  // namespace

Result<FaultInjectionSpec> FaultInjectionSpec::Parse(const std::string& text) {
  FaultInjectionSpec spec;
  std::vector<std::string_view> parts = SplitTokens(text, ":");
  if (parts.empty()) {
    return Error("empty fault injection spec");
  }
  Result<Kind> kind = ParseKind(std::string(parts[0]));
  if (!kind.ok()) {
    return kind.error();
  }
  spec.kind = *kind;
  for (size_t i = 1; i < parts.size(); ++i) {
    std::string part(parts[i]);
    size_t eq = part.find('=');
    if (eq == std::string::npos) {
      return Error("fault spec option '" + part + "' is not key=value");
    }
    std::string key = part.substr(0, eq);
    std::string value = part.substr(eq + 1);
    if (key == "p") {
      spec.probability = std::atof(value.c_str());
      if (spec.probability < 0 || spec.probability > 1) {
        return Error("fault probability must be in [0, 1]");
      }
    } else if (key == "seed") {
      spec.seed = static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "max") {
      spec.max_injections = std::atoi(value.c_str());
    } else if (key == "slow") {
      spec.slow_seconds = std::atof(value.c_str());
    } else {
      return Error("unknown fault spec option '" + key + "' (p|seed|max|slow)");
    }
  }
  return spec;
}

std::string FaultInjectionSpec::ToString() const {
  std::string kind_name;
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kTimeout:
      kind_name = "timeout";
      break;
    case Kind::kUnsat:
      kind_name = "unsat";
      break;
    case Kind::kSlow:
      kind_name = "slow";
      break;
    case Kind::kThrow:
      kind_name = "throw";
      break;
  }
  std::string out = kind_name + ":p=" + std::to_string(probability) +
                    ":seed=" + std::to_string(seed);
  if (max_injections >= 0) {
    out += ":max=" + std::to_string(max_injections);
  }
  return out;
}

std::unique_ptr<MaxSmtBackend> MakeFaultInjectingBackend(
    std::unique_ptr<MaxSmtBackend> inner, const FaultInjectionSpec& spec) {
  return std::make_unique<FaultInjectingBackend>(std::move(inner), spec);
}

}  // namespace cpr
