#include "solver/fault_injection.h"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "netbase/string_util.h"
#include "obs/metrics.h"
#include "smt/certificate.h"

namespace cpr {

namespace {

Result<FaultInjectionSpec::Kind> ParseKind(const std::string& word) {
  using Kind = FaultInjectionSpec::Kind;
  if (word == "none") {
    return Kind::kNone;
  }
  if (word == "timeout") {
    return Kind::kTimeout;
  }
  if (word == "unsat") {
    return Kind::kUnsat;
  }
  if (word == "slow") {
    return Kind::kSlow;
  }
  if (word == "throw") {
    return Kind::kThrow;
  }
  if (word == "corrupt-proof") {
    return Kind::kCorruptProof;
  }
  if (word == "flip-model") {
    return Kind::kFlipModel;
  }
  if (word == "drop-core") {
    return Kind::kDropCore;
  }
  return Error("unknown fault kind '" + word +
               "' (timeout|unsat|slow|throw|corrupt-proof|flip-model|drop-core)");
}

bool IsCertificateKind(FaultInjectionSpec::Kind kind) {
  return kind == FaultInjectionSpec::Kind::kCorruptProof ||
         kind == FaultInjectionSpec::Kind::kFlipModel ||
         kind == FaultInjectionSpec::Kind::kDropCore;
}

class FaultInjectingBackend final : public MaxSmtBackend {
 public:
  FaultInjectingBackend(std::unique_ptr<MaxSmtBackend> inner, FaultInjectionSpec spec)
      : inner_(std::move(inner)), spec_(spec), rng_state_(spec.seed) {}

  MaxSmtResult Solve(const ConstraintSystem& system, double timeout_seconds) override {
    // Certificate corruptions only make sense on the certified path; a plain
    // solve passes through untouched.
    if (!IsCertificateKind(spec_.kind)) {
      if (std::optional<MaxSmtResult> degraded = MaybeDegrade()) {
        return *std::move(degraded);
      }
    }
    return inner_->Solve(system, timeout_seconds);
  }

  MaxSmtResult SolveCertified(const ConstraintSystem& system,
                              double timeout_seconds) override {
    if (IsCertificateKind(spec_.kind)) {
      MaxSmtResult result = inner_->SolveCertified(system, timeout_seconds);
      if (ShouldInject()) {
        CorruptCertificate(&result);
      }
      return result;
    }
    if (std::optional<MaxSmtResult> degraded = MaybeDegrade()) {
      return *std::move(degraded);
    }
    return inner_->SolveCertified(system, timeout_seconds);
  }

  std::string name() const override { return inner_->name() + "+fault"; }

 private:
  // Pre-solve degradation for the legacy kinds. Returns the injected result
  // (timeout/unsat), throws (throw), or returns nullopt after an optional
  // sleep (slow / no injection) so the caller proceeds to a real solve.
  std::optional<MaxSmtResult> MaybeDegrade() {
    if (!ShouldInject()) {
      return std::nullopt;
    }
    MaxSmtResult result;
    result.backend = name();
    switch (spec_.kind) {
      case FaultInjectionSpec::Kind::kTimeout:
        result.status = MaxSmtResult::Status::kTimeout;
        result.message = "injected timeout";
        return result;
      case FaultInjectionSpec::Kind::kUnsat:
        result.status = MaxSmtResult::Status::kUnsat;
        result.message = "injected unsat";
        return result;
      case FaultInjectionSpec::Kind::kThrow:
        throw std::runtime_error("injected backend exception");
      case FaultInjectionSpec::Kind::kSlow:
        std::this_thread::sleep_for(
            std::chrono::duration<double>(spec_.slow_seconds));
        return std::nullopt;  // Then solve normally.
      default:
        return std::nullopt;
    }
  }

  // Deterministic, minimal corruptions that a sound checker must catch (on
  // workloads where the evidence actually carries the claim — see the
  // header). Copy-on-write: the inner backend may share the certificate.
  void CorruptCertificate(MaxSmtResult* result) {
    if (result->certificate == nullptr) {
      // Model-only path (Z3): the only corruptible evidence is the model.
      if (spec_.kind == FaultInjectionSpec::Kind::kFlipModel &&
          !result->bool_values.empty()) {
        result->bool_values[0] = !result->bool_values[0];
      }
      return;
    }
    auto cert = std::make_shared<Certificate>(*result->certificate);
    switch (spec_.kind) {
      case FaultInjectionSpec::Kind::kFlipModel: {
        // Flip a cost-relevant bit: the first soft clause's first variable
        // toggles that soft's violation, so the witness cost no longer
        // matches the claimed optimum. Flip the result too — a divergence
        // between certificate and result is the *bridge* check's job; this
        // fault targets the arithmetic.
        size_t var = 0;
        if (!cert->softs.empty() && !cert->softs[0].clause.empty()) {
          var = static_cast<size_t>(cert->softs[0].clause[0].var());
        }
        if (var < cert->model.size()) {
          cert->model[var] = !cert->model[var];
        }
        if (var < result->bool_values.size()) {
          result->bool_values[var] = !result->bool_values[var];
        }
        break;
      }
      case FaultInjectionSpec::Kind::kDropCore: {
        if (cert->core_event >= 0 &&
            cert->core_event < static_cast<int64_t>(cert->core_events.size()) &&
            !cert->core_events.lits(static_cast<size_t>(cert->core_event)).empty()) {
          cert->core_events.DropLastLit(static_cast<size_t>(cert->core_event));
          break;
        }
        [[fallthrough]];  // No core conclusion: corrupt the main proof.
      }
      case FaultInjectionSpec::Kind::kCorruptProof: {
        if (cert->claim == Certificate::Claim::kUnsat) {
          // Remove the learnt lemmas: the surviving inputs and deletes no
          // longer derive UNSAT (and deletes now reference unknown clauses).
          cert->events.RemoveEventsOfKind(ProofEventKind::kLemma);
        } else if (!cert->iterations.empty()) {
          // Flip a literal of the first core lemma: it no longer names the
          // iteration's member selectors.
          int64_t index = cert->iterations[0].core_event;
          if (index >= 0 && index < static_cast<int64_t>(cert->events.size()) &&
              !cert->events.lits(static_cast<size_t>(index)).empty()) {
            std::span<Lit> lits = cert->events.mutable_lits(static_cast<size_t>(index));
            lits[0] = ~lits[0];
          }
        } else {
          // Zero-cost optimum with no cores: smuggle in an input clause,
          // which the no-inputs-after-baseline rule must reject.
          cert->events.Append(ProofEventKind::kInput, Clause{Lit(0, false)});
        }
        break;
      }
      default:
        break;
    }
    result->certificate = std::move(cert);
  }

  bool ShouldInject() {
    if (!spec_.enabled()) {
      return false;
    }
    if (spec_.max_injections >= 0 && injected_ >= spec_.max_injections) {
      return false;
    }
    if (NextUniform() >= spec_.probability) {
      return false;
    }
    ++injected_;
    obs::CurrentRegistry().counter("solver.faults_injected").Increment();
    return true;
  }

  // splitmix64: tiny, seeded, platform-independent — injection sequences
  // must be reproducible across standard libraries.
  double NextUniform() {
    uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) / 9007199254740992.0;  // [0, 1)
  }

  std::unique_ptr<MaxSmtBackend> inner_;
  FaultInjectionSpec spec_;
  uint64_t rng_state_;
  int injected_ = 0;
};

}  // namespace

Result<FaultInjectionSpec> FaultInjectionSpec::Parse(const std::string& text) {
  FaultInjectionSpec spec;
  std::vector<std::string_view> parts = SplitTokens(text, ":");
  if (parts.empty()) {
    return Error("empty fault injection spec");
  }
  Result<Kind> kind = ParseKind(std::string(parts[0]));
  if (!kind.ok()) {
    return kind.error();
  }
  spec.kind = *kind;
  for (size_t i = 1; i < parts.size(); ++i) {
    std::string part(parts[i]);
    size_t eq = part.find('=');
    if (eq == std::string::npos) {
      return Error("fault spec option '" + part + "' is not key=value");
    }
    std::string key = part.substr(0, eq);
    std::string value = part.substr(eq + 1);
    if (key == "p") {
      spec.probability = std::atof(value.c_str());
      if (spec.probability < 0 || spec.probability > 1) {
        return Error("fault probability must be in [0, 1]");
      }
    } else if (key == "seed") {
      spec.seed = static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "max") {
      spec.max_injections = std::atoi(value.c_str());
    } else if (key == "slow") {
      spec.slow_seconds = std::atof(value.c_str());
    } else {
      return Error("unknown fault spec option '" + key + "' (p|seed|max|slow)");
    }
  }
  return spec;
}

std::string FaultInjectionSpec::ToString() const {
  std::string kind_name;
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kTimeout:
      kind_name = "timeout";
      break;
    case Kind::kUnsat:
      kind_name = "unsat";
      break;
    case Kind::kSlow:
      kind_name = "slow";
      break;
    case Kind::kThrow:
      kind_name = "throw";
      break;
    case Kind::kCorruptProof:
      kind_name = "corrupt-proof";
      break;
    case Kind::kFlipModel:
      kind_name = "flip-model";
      break;
    case Kind::kDropCore:
      kind_name = "drop-core";
      break;
  }
  std::string out = kind_name + ":p=" + std::to_string(probability) +
                    ":seed=" + std::to_string(seed);
  if (max_injections >= 0) {
    out += ":max=" + std::to_string(max_injections);
  }
  return out;
}

std::unique_ptr<MaxSmtBackend> MakeFaultInjectingBackend(
    std::unique_ptr<MaxSmtBackend> inner, const FaultInjectionSpec& spec) {
  return std::make_unique<FaultInjectingBackend>(std::move(inner), spec);
}

}  // namespace cpr
