#include "arc/harc.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/span.h"

namespace cpr {

namespace {

// The distribute-list (route filter) configured on a routing process, if
// any.
const DistributeList* ProcessDistributeList(const Network& network, ProcessId process) {
  const RoutingProcess& proc = network.processes()[static_cast<size_t>(process)];
  const Config& config = network.config_for(proc.device);
  switch (proc.kind) {
    case RouteSource::kOspf: {
      const OspfConfig* ospf = config.FindOspf(proc.protocol_id);
      return ospf != nullptr && ospf->distribute_list.has_value() ? &*ospf->distribute_list
                                                                  : nullptr;
    }
    case RouteSource::kBgp:
      return config.bgp.has_value() && config.bgp->distribute_list.has_value()
                 ? &*config.bgp->distribute_list
                 : nullptr;
    case RouteSource::kRip:
      return config.rip.has_value() && config.rip->distribute_list.has_value()
                 ? &*config.rip->distribute_list
                 : nullptr;
    case RouteSource::kConnected:
    case RouteSource::kStatic:
      return nullptr;
  }
  return nullptr;
}

// Link interface names oriented so `.first` is on `egress_device`.
std::pair<std::string, std::string> OrientLink(const TopoLink& link, DeviceId egress_device) {
  if (link.device_a == egress_device) {
    return {link.interface_a, link.interface_b};
  }
  assert(link.device_b == egress_device);
  return {link.interface_b, link.interface_a};
}

bool OspfInterfacePassive(const Network& network, ProcessId process,
                          const std::string& interface) {
  const RoutingProcess& proc = network.processes()[static_cast<size_t>(process)];
  const Config& config = network.config_for(proc.device);
  const OspfConfig* ospf = config.FindOspf(proc.protocol_id);
  return ospf != nullptr && ospf->passive_interfaces.count(interface) > 0;
}

bool BgpSessionConfigured(const Network& network, ProcessId from, DeviceId to_device,
                          const std::string& to_interface, int to_asn) {
  const RoutingProcess& proc = network.processes()[static_cast<size_t>(from)];
  const Config& config = network.config_for(proc.device);
  if (!config.bgp.has_value()) {
    return false;
  }
  const InterfaceConfig* peer_intf = network.config_for(to_device).FindInterface(to_interface);
  if (peer_intf == nullptr || !peer_intf->address.has_value()) {
    return false;
  }
  for (const BgpNeighbor& neighbor : config.bgp->neighbors) {
    if (neighbor.ip == peer_intf->address->ip && neighbor.remote_as == to_asn) {
      return true;
    }
  }
  return false;
}

// Whether an ACL named `acl_name` (applied on some interface) blocks `tc`.
bool AclBlocks(const Config& config, const std::optional<std::string>& acl_name,
               const TrafficClass& tc) {
  if (!acl_name.has_value()) {
    return false;
  }
  const AccessList* acl = config.FindAccessList(*acl_name);
  if (acl == nullptr) {
    return false;  // Referencing an undefined ACL permits all traffic (IOS).
  }
  return !acl->Permits(tc);
}

}  // namespace

bool ProcessBlocksDestination(const Network& network, ProcessId process,
                              const Ipv4Prefix& destination) {
  const DistributeList* dist_list = ProcessDistributeList(network, process);
  if (dist_list == nullptr) {
    return false;
  }
  const RoutingProcess& proc = network.processes()[static_cast<size_t>(process)];
  const PrefixList* prefix_list =
      network.config_for(proc.device).FindPrefixList(dist_list->prefix_list);
  if (prefix_list == nullptr) {
    return false;  // Undefined prefix list: no filtering.
  }
  return !prefix_list->Permits(destination);
}

bool AdjacencyConfigured(const Network& network, const CandidateEdge& edge) {
  assert(edge.kind == EtgEdgeKind::kInterDevice);
  if (!edge.adjacency_realizable) {
    return false;
  }
  const RoutingProcess& from_proc =
      network.processes()[static_cast<size_t>(edge.from_process)];
  const RoutingProcess& to_proc = network.processes()[static_cast<size_t>(edge.to_process)];
  const TopoLink& link = network.links()[static_cast<size_t>(edge.link)];
  auto [egress_intf, ingress_intf] = OrientLink(link, edge.device);
  switch (from_proc.kind) {
    case RouteSource::kOspf:
      return network.ProcessUsesInterface(edge.from_process, egress_intf) &&
             network.ProcessUsesInterface(edge.to_process, ingress_intf) &&
             !OspfInterfacePassive(network, edge.from_process, egress_intf) &&
             !OspfInterfacePassive(network, edge.to_process, ingress_intf);
    case RouteSource::kRip:
      return network.ProcessUsesInterface(edge.from_process, egress_intf) &&
             network.ProcessUsesInterface(edge.to_process, ingress_intf);
    case RouteSource::kBgp: {
      DeviceId to_device = to_proc.device;
      DeviceId from_device = from_proc.device;
      return BgpSessionConfigured(network, edge.from_process, to_device, ingress_intf,
                                  to_proc.protocol_id) &&
             BgpSessionConfigured(network, edge.to_process, from_device, egress_intf,
                                  from_proc.protocol_id);
    }
    case RouteSource::kConnected:
    case RouteSource::kStatic:
      return false;
  }
  return false;
}

bool RedistributionConfigured(const Network& network, const CandidateEdge& edge) {
  assert(edge.kind == EtgEdgeKind::kRedistribution);
  // `from_process` (whose I vertex the edge leaves) is the process that
  // advertises the routes, i.e. the one configured with `redistribute`.
  const RoutingProcess& redistributing =
      network.processes()[static_cast<size_t>(edge.from_process)];
  const RoutingProcess& source = network.processes()[static_cast<size_t>(edge.to_process)];
  const Config& config = network.config_for(redistributing.device);
  const std::vector<Redistribution>* redists = nullptr;
  switch (redistributing.kind) {
    case RouteSource::kOspf: {
      const OspfConfig* ospf = config.FindOspf(redistributing.protocol_id);
      if (ospf == nullptr) {
        return false;
      }
      redists = &ospf->redistributes;
      break;
    }
    case RouteSource::kBgp:
      if (!config.bgp.has_value()) {
        return false;
      }
      redists = &config.bgp->redistributes;
      break;
    case RouteSource::kRip:
      if (!config.rip.has_value()) {
        return false;
      }
      redists = &config.rip->redistributes;
      break;
    case RouteSource::kConnected:
    case RouteSource::kStatic:
      return false;
  }
  for (const Redistribution& redist : *redists) {
    if (redist.from == source.kind &&
        (redist.from == RouteSource::kRip || redist.process_id == source.protocol_id)) {
      return true;
    }
  }
  return false;
}

bool LinkAclBlocks(const Network& network, LinkId link_id, DeviceId egress_device,
                   const TrafficClass& tc) {
  const TopoLink& link = network.links()[static_cast<size_t>(link_id)];
  auto [egress_intf, ingress_intf] = OrientLink(link, egress_device);
  DeviceId ingress_device = link.device_a == egress_device ? link.device_b : link.device_a;
  const Config& egress_config = network.config_for(egress_device);
  const Config& ingress_config = network.config_for(ingress_device);
  const InterfaceConfig* out_intf = egress_config.FindInterface(egress_intf);
  const InterfaceConfig* in_intf = ingress_config.FindInterface(ingress_intf);
  return (out_intf != nullptr && AclBlocks(egress_config, out_intf->acl_out, tc)) ||
         (in_intf != nullptr && AclBlocks(ingress_config, in_intf->acl_in, tc));
}

bool EndpointAclBlocks(const Network& network, SubnetId subnet_id, bool src_side,
                       const TrafficClass& tc) {
  const Subnet& subnet = network.subnets()[static_cast<size_t>(subnet_id)];
  const Config& config = network.config_for(subnet.device);
  const InterfaceConfig* intf = config.FindInterface(subnet.interface);
  if (intf == nullptr) {
    return false;
  }
  return AclBlocks(config, src_side ? intf->acl_in : intf->acl_out, tc);
}

bool StaticRouteConfigured(const Network& network, DeviceId device, LinkId link,
                           const Ipv4Prefix& dst) {
  const Config& config = network.config_for(device);
  for (const StaticRouteConfig& route : config.static_routes) {
    if (!route.prefix.Contains(dst)) {
      continue;
    }
    auto next_hop = network.ResolveNextHop(device, route.next_hop);
    if (next_hop.has_value() && next_hop->link == link) {
      return true;
    }
  }
  return false;
}

Harc Harc::Build(const Network& network) {
  obs::StageSpan span("harc.build");
  Harc harc;
  harc.universe_ = std::make_shared<const EtgUniverse>(EtgUniverse::Build(network));
  const EtgUniverse& universe = *harc.universe_;
  const int subnet_count = static_cast<int>(network.subnets().size());
  {
    obs::Registry& registry = obs::CurrentRegistry();
    registry.gauge("harc.subnets").Set(subnet_count);
    registry.gauge("harc.candidate_vertices").Set(universe.VertexCount());
    registry.gauge("harc.candidate_edges").Set(universe.EdgeCount());
    // Per-traffic-class ETGs: one per ordered (src, dst) subnet pair.
    registry.gauge("harc.tcetgs").Set(static_cast<int64_t>(subnet_count) *
                                      (subnet_count - 1));
  }

  // ---- aETG: adjacencies and redistribution (applies to everything). ----
  harc.aetg_ = Etg(&universe);
  for (int e = 0; e < universe.EdgeCount(); ++e) {
    const CandidateEdge& edge = universe.edge(e);
    switch (edge.kind) {
      case EtgEdgeKind::kIntraSelf:
      case EtgEdgeKind::kEndpointSrc:
      case EtgEdgeKind::kEndpointDst:
        harc.aetg_.SetPresent(e, true);
        break;
      case EtgEdgeKind::kRedistribution:
        harc.aetg_.SetPresent(e, RedistributionConfigured(network, edge));
        break;
      case EtgEdgeKind::kInterDevice:
        harc.aetg_.SetPresent(e, AdjacencyConfigured(network, edge));
        break;
    }
  }

  // ---- dETGs: plus route filters and static routes (per destination). ----
  harc.detgs_.reserve(static_cast<size_t>(subnet_count));
  for (SubnetId d = 0; d < subnet_count; ++d) {
    const Subnet& dst = network.subnets()[static_cast<size_t>(d)];
    Etg detg = harc.aetg_;

    // Processes whose route filter blocks this destination lose all route
    // exchange (Algorithm 1 lines 4-5, 7, 12).
    std::vector<bool> blocked(network.processes().size(), false);
    for (size_t p = 0; p < network.processes().size(); ++p) {
      blocked[p] = ProcessBlocksDestination(network, static_cast<ProcessId>(p), dst.prefix);
    }
    for (int e = 0; e < universe.EdgeCount(); ++e) {
      const CandidateEdge& edge = universe.edge(e);
      if (edge.kind == EtgEdgeKind::kInterDevice ||
          edge.kind == EtgEdgeKind::kRedistribution) {
        if (blocked[static_cast<size_t>(edge.from_process)] ||
            blocked[static_cast<size_t>(edge.to_process)]) {
          detg.SetPresent(e, false);
        }
      }
      // Destination-scoped endpoint trimming: a dETG routes *to* d from any
      // source, so only d's delivery edges and other subnets' source edges
      // remain.
      if (edge.kind == EtgEdgeKind::kEndpointDst && edge.subnet != d) {
        detg.SetPresent(e, false);
      }
      if (edge.kind == EtgEdgeKind::kEndpointSrc && edge.subnet == d) {
        detg.SetPresent(e, false);
      }
    }

    // Static routes covering this destination add inter-device edges from
    // every process on the configuring device toward the next hop
    // (Figure 4). Their weight is the route's administrative distance so a
    // backup static route (AD > 110) loses to protocol-computed paths in
    // shortest-path queries, as in the paper's Figure 2d repair.
    for (size_t dev = 0; dev < network.devices().size(); ++dev) {
      const Config& config = network.configs()[dev];
      for (const StaticRouteConfig& route : config.static_routes) {
        if (!route.prefix.Contains(dst.prefix)) {
          continue;
        }
        auto next_hop = network.ResolveNextHop(static_cast<DeviceId>(dev), route.next_hop);
        if (!next_hop.has_value()) {
          continue;  // Unresolvable next hop: route is inert.
        }
        for (int e = 0; e < universe.EdgeCount(); ++e) {
          const CandidateEdge& edge = universe.edge(e);
          if (edge.kind == EtgEdgeKind::kInterDevice && edge.link == next_hop->link &&
              edge.device == static_cast<DeviceId>(dev)) {
            if (!detg.IsPresent(e)) {
              detg.SetPresent(e, true);
              detg.SetWeight(e, route.distance);
            }
          }
        }
      }
    }

    harc.detgs_.push_back(std::move(detg));
  }

  // ---- tcETGs: plus ACLs (per traffic class). ----
  harc.tcetgs_.assign(static_cast<size_t>(subnet_count) * static_cast<size_t>(subnet_count),
                      Etg());
  for (SubnetId s = 0; s < subnet_count; ++s) {
    for (SubnetId d = 0; d < subnet_count; ++d) {
      if (s == d) {
        continue;
      }
      const TrafficClass tc(network.subnets()[static_cast<size_t>(s)].prefix,
                            network.subnets()[static_cast<size_t>(d)].prefix);
      Etg tcetg = harc.detgs_[static_cast<size_t>(d)];
      for (int e = 0; e < universe.EdgeCount(); ++e) {
        if (!tcetg.IsPresent(e)) {
          continue;
        }
        const CandidateEdge& edge = universe.edge(e);
        switch (edge.kind) {
          case EtgEdgeKind::kInterDevice: {
            const TopoLink& link = network.links()[static_cast<size_t>(edge.link)];
            auto [egress_intf, ingress_intf] = OrientLink(link, edge.device);
            DeviceId ingress_device =
                link.device_a == edge.device ? link.device_b : link.device_a;
            const Config& egress_config = network.config_for(edge.device);
            const Config& ingress_config = network.config_for(ingress_device);
            const InterfaceConfig* out_intf = egress_config.FindInterface(egress_intf);
            const InterfaceConfig* in_intf = ingress_config.FindInterface(ingress_intf);
            if ((out_intf != nullptr && AclBlocks(egress_config, out_intf->acl_out, tc)) ||
                (in_intf != nullptr && AclBlocks(ingress_config, in_intf->acl_in, tc))) {
              tcetg.SetPresent(e, false);
            }
            break;
          }
          case EtgEdgeKind::kEndpointSrc: {
            if (edge.subnet != s) {
              tcetg.SetPresent(e, false);
              break;
            }
            const Subnet& subnet = network.subnets()[static_cast<size_t>(edge.subnet)];
            const Config& config = network.config_for(subnet.device);
            const InterfaceConfig* intf = config.FindInterface(subnet.interface);
            if (intf != nullptr && AclBlocks(config, intf->acl_in, tc)) {
              tcetg.SetPresent(e, false);
            }
            break;
          }
          case EtgEdgeKind::kEndpointDst: {
            const Subnet& subnet = network.subnets()[static_cast<size_t>(edge.subnet)];
            const Config& config = network.config_for(subnet.device);
            const InterfaceConfig* intf = config.FindInterface(subnet.interface);
            if (intf != nullptr && AclBlocks(config, intf->acl_out, tc)) {
              tcetg.SetPresent(e, false);
            }
            break;
          }
          case EtgEdgeKind::kIntraSelf:
          case EtgEdgeKind::kRedistribution:
            break;
        }
      }
      harc.tcetgs_[harc.TcIndex(s, d)] = std::move(tcetg);
    }
  }

  return harc;
}

Status Harc::CheckHierarchy() const {
  const EtgUniverse& universe = *universe_;
  const int subnet_count = SubnetCount();
  for (SubnetId d = 0; d < subnet_count; ++d) {
    const Etg& detg = detgs_[static_cast<size_t>(d)];
    for (int e = 0; e < universe.EdgeCount(); ++e) {
      if (detg.IsPresent(e) && !aetg_.IsPresent(e) &&
          universe.edge(e).kind != EtgEdgeKind::kInterDevice) {
        return Error("dETG " + std::to_string(d) + " edge " + std::to_string(e) +
                     " is absent from the aETG and not static-route-realizable");
      }
    }
    for (SubnetId s = 0; s < subnet_count; ++s) {
      if (s == d) {
        continue;
      }
      const Etg& tcetg = tcetgs_[TcIndex(s, d)];
      for (int e = 0; e < universe.EdgeCount(); ++e) {
        if (tcetg.IsPresent(e) && !detg.IsPresent(e)) {
          return Error("tcETG (" + std::to_string(s) + "," + std::to_string(d) + ") edge " +
                       std::to_string(e) + " violates the tcETG<=dETG hierarchy");
        }
      }
    }
  }
  return Status::Ok();
}

void Harc::ApplyWeightOverride(CandidateEdgeId edge, double weight) {
  aetg_.SetWeight(edge, weight);
  for (Etg& detg : detgs_) {
    detg.SetWeight(edge, weight);
  }
  const int subnet_count = SubnetCount();
  for (SubnetId s = 0; s < subnet_count; ++s) {
    for (SubnetId d = 0; d < subnet_count; ++d) {
      if (s != d) {
        tcetgs_[TcIndex(s, d)].SetWeight(edge, weight);
      }
    }
  }
}

bool Harc::IsStaticRouteEdge(SubnetId dst, CandidateEdgeId edge) const {
  return detgs_[static_cast<size_t>(dst)].IsPresent(edge) && !aetg_.IsPresent(edge);
}

}  // namespace cpr
