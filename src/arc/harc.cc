#include "arc/harc.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/span.h"

namespace cpr {

namespace {

// The distribute-list (route filter) configured on a routing process, if
// any.
const DistributeList* ProcessDistributeList(const Network& network, ProcessId process) {
  const RoutingProcess& proc = network.processes()[static_cast<size_t>(process)];
  const Config& config = network.config_for(proc.device);
  switch (proc.kind) {
    case RouteSource::kOspf: {
      const OspfConfig* ospf = config.FindOspf(proc.protocol_id);
      return ospf != nullptr && ospf->distribute_list.has_value() ? &*ospf->distribute_list
                                                                  : nullptr;
    }
    case RouteSource::kBgp:
      return config.bgp.has_value() && config.bgp->distribute_list.has_value()
                 ? &*config.bgp->distribute_list
                 : nullptr;
    case RouteSource::kRip:
      return config.rip.has_value() && config.rip->distribute_list.has_value()
                 ? &*config.rip->distribute_list
                 : nullptr;
    case RouteSource::kConnected:
    case RouteSource::kStatic:
      return nullptr;
  }
  return nullptr;
}

// Link interface names oriented so `.first` is on `egress_device`.
std::pair<std::string, std::string> OrientLink(const TopoLink& link, DeviceId egress_device) {
  if (link.device_a == egress_device) {
    return {link.interface_a, link.interface_b};
  }
  assert(link.device_b == egress_device);
  return {link.interface_b, link.interface_a};
}

bool OspfInterfacePassive(const Network& network, ProcessId process,
                          const std::string& interface) {
  const RoutingProcess& proc = network.processes()[static_cast<size_t>(process)];
  const Config& config = network.config_for(proc.device);
  const OspfConfig* ospf = config.FindOspf(proc.protocol_id);
  return ospf != nullptr && ospf->passive_interfaces.count(interface) > 0;
}

bool BgpSessionConfigured(const Network& network, ProcessId from, DeviceId to_device,
                          const std::string& to_interface, int to_asn) {
  const RoutingProcess& proc = network.processes()[static_cast<size_t>(from)];
  const Config& config = network.config_for(proc.device);
  if (!config.bgp.has_value()) {
    return false;
  }
  const InterfaceConfig* peer_intf = network.config_for(to_device).FindInterface(to_interface);
  if (peer_intf == nullptr || !peer_intf->address.has_value()) {
    return false;
  }
  for (const BgpNeighbor& neighbor : config.bgp->neighbors) {
    if (neighbor.ip == peer_intf->address->ip && neighbor.remote_as == to_asn) {
      return true;
    }
  }
  return false;
}

// Whether an ACL named `acl_name` (applied on some interface) blocks `tc`.
bool AclBlocks(const Config& config, const std::optional<std::string>& acl_name,
               const TrafficClass& tc) {
  if (!acl_name.has_value()) {
    return false;
  }
  const AccessList* acl = config.FindAccessList(*acl_name);
  if (acl == nullptr) {
    return false;  // Referencing an undefined ACL permits all traffic (IOS).
  }
  return !acl->Permits(tc);
}

}  // namespace

namespace {

// One destination's dETG: the aETG minus blocked processes and
// destination-scoped endpoint trimming, plus static-route edges (Algorithm 1
// lines 4-12, Figure 4). Extracted from Build() so the incremental engine
// can re-derive a single dirty destination.
Etg BuildDetgLayer(const Network& network, const EtgUniverse& universe, const Etg& aetg,
                   SubnetId d) {
  const Subnet& dst = network.subnets()[static_cast<size_t>(d)];
  Etg detg = aetg;

  // Processes whose route filter blocks this destination lose all route
  // exchange (Algorithm 1 lines 4-5, 7, 12).
  std::vector<bool> blocked(network.processes().size(), false);
  for (size_t p = 0; p < network.processes().size(); ++p) {
    blocked[p] = ProcessBlocksDestination(network, static_cast<ProcessId>(p), dst.prefix);
  }
  for (int e = 0; e < universe.EdgeCount(); ++e) {
    const CandidateEdge& edge = universe.edge(e);
    if (edge.kind == EtgEdgeKind::kInterDevice ||
        edge.kind == EtgEdgeKind::kRedistribution) {
      if (blocked[static_cast<size_t>(edge.from_process)] ||
          blocked[static_cast<size_t>(edge.to_process)]) {
        detg.SetPresent(e, false);
      }
    }
    // Destination-scoped endpoint trimming: a dETG routes *to* d from any
    // source, so only d's delivery edges and other subnets' source edges
    // remain.
    if (edge.kind == EtgEdgeKind::kEndpointDst && edge.subnet != d) {
      detg.SetPresent(e, false);
    }
    if (edge.kind == EtgEdgeKind::kEndpointSrc && edge.subnet == d) {
      detg.SetPresent(e, false);
    }
  }

  // Static routes covering this destination add inter-device edges from
  // every process on the configuring device toward the next hop (Figure 4).
  // Their weight is the route's administrative distance so a backup static
  // route (AD > 110) loses to protocol-computed paths in shortest-path
  // queries, as in the paper's Figure 2d repair.
  for (size_t dev = 0; dev < network.devices().size(); ++dev) {
    const Config& config = network.configs()[dev];
    for (const StaticRouteConfig& route : config.static_routes) {
      if (!route.prefix.Contains(dst.prefix)) {
        continue;
      }
      auto next_hop = network.ResolveNextHop(static_cast<DeviceId>(dev), route.next_hop);
      if (!next_hop.has_value()) {
        continue;  // Unresolvable next hop: route is inert.
      }
      for (int e = 0; e < universe.EdgeCount(); ++e) {
        const CandidateEdge& edge = universe.edge(e);
        if (edge.kind == EtgEdgeKind::kInterDevice && edge.link == next_hop->link &&
            edge.device == static_cast<DeviceId>(dev)) {
          if (!detg.IsPresent(e)) {
            detg.SetPresent(e, true);
            detg.SetWeight(e, route.distance);
          }
        }
      }
    }
  }

  return detg;
}

// One traffic class's tcETG: the dETG minus ACL-blocked edges and
// source-scoped endpoint trimming (Algorithm 1's per-traffic-class step).
Etg BuildTcetgLayer(const Network& network, const EtgUniverse& universe, const Etg& detg,
                    SubnetId s, SubnetId d) {
  const TrafficClass tc(network.subnets()[static_cast<size_t>(s)].prefix,
                        network.subnets()[static_cast<size_t>(d)].prefix);
  Etg tcetg = detg;
  for (int e = 0; e < universe.EdgeCount(); ++e) {
    if (!tcetg.IsPresent(e)) {
      continue;
    }
    const CandidateEdge& edge = universe.edge(e);
    switch (edge.kind) {
      case EtgEdgeKind::kInterDevice: {
        const TopoLink& link = network.links()[static_cast<size_t>(edge.link)];
        auto [egress_intf, ingress_intf] = OrientLink(link, edge.device);
        DeviceId ingress_device =
            link.device_a == edge.device ? link.device_b : link.device_a;
        const Config& egress_config = network.config_for(edge.device);
        const Config& ingress_config = network.config_for(ingress_device);
        const InterfaceConfig* out_intf = egress_config.FindInterface(egress_intf);
        const InterfaceConfig* in_intf = ingress_config.FindInterface(ingress_intf);
        if ((out_intf != nullptr && AclBlocks(egress_config, out_intf->acl_out, tc)) ||
            (in_intf != nullptr && AclBlocks(ingress_config, in_intf->acl_in, tc))) {
          tcetg.SetPresent(e, false);
        }
        break;
      }
      case EtgEdgeKind::kEndpointSrc: {
        if (edge.subnet != s) {
          tcetg.SetPresent(e, false);
          break;
        }
        const Subnet& subnet = network.subnets()[static_cast<size_t>(edge.subnet)];
        const Config& config = network.config_for(subnet.device);
        const InterfaceConfig* intf = config.FindInterface(subnet.interface);
        if (intf != nullptr && AclBlocks(config, intf->acl_in, tc)) {
          tcetg.SetPresent(e, false);
        }
        break;
      }
      case EtgEdgeKind::kEndpointDst: {
        const Subnet& subnet = network.subnets()[static_cast<size_t>(edge.subnet)];
        const Config& config = network.config_for(subnet.device);
        const InterfaceConfig* intf = config.FindInterface(subnet.interface);
        if (intf != nullptr && AclBlocks(config, intf->acl_out, tc)) {
          tcetg.SetPresent(e, false);
        }
        break;
      }
      case EtgEdgeKind::kIntraSelf:
      case EtgEdgeKind::kRedistribution:
        break;
    }
  }
  return tcetg;
}

// Precomputed traffic-class scaffolding for Build()'s S^2 tcETG loop.
//
// BuildTcetgLayer re-derives, for every (src, dst) pair, which edges the
// traffic class loses — but only two kinds of edges actually depend on the
// pair: endpoint-source edges (trimmed to the source subnet) and edges whose
// interfaces carry a *defined* ACL binding (an undefined ACL permits all
// traffic, so it can never clear an edge). Resolving interface and ACL names
// once per network turns the per-pair work from O(E) string lookups into a
// bitmap copy plus a handful of Permits() calls. BuildTcetgLayer stays the
// naive reference; RebuildDestination/RebuildTrafficClass call it, and
// arc_test asserts the two paths agree edge-for-edge.
struct TcetgScaffold {
  // kEndpointSrc candidate edges grouped by their subnet.
  std::vector<std::vector<CandidateEdgeId>> src_edges_by_subnet;
  // Edges whose presence depends on the traffic class through a resolved
  // ACL. An inter-device edge with ACLs on both sides contributes two
  // entries.
  struct AclCheck {
    CandidateEdgeId edge;
    const AccessList* acl;  // Never null.
  };
  std::vector<AclCheck> checks;
};

TcetgScaffold BuildTcetgScaffold(const Network& network, const EtgUniverse& universe) {
  TcetgScaffold scaffold;
  scaffold.src_edges_by_subnet.assign(network.subnets().size(), {});
  auto resolve = [](const Config& config, const InterfaceConfig* intf,
                    bool inbound) -> const AccessList* {
    if (intf == nullptr) {
      return nullptr;
    }
    const std::optional<std::string>& name = inbound ? intf->acl_in : intf->acl_out;
    return name.has_value() ? config.FindAccessList(*name) : nullptr;
  };
  for (int e = 0; e < universe.EdgeCount(); ++e) {
    const CandidateEdge& edge = universe.edge(e);
    switch (edge.kind) {
      case EtgEdgeKind::kInterDevice: {
        const TopoLink& link = network.links()[static_cast<size_t>(edge.link)];
        auto [egress_intf, ingress_intf] = OrientLink(link, edge.device);
        DeviceId ingress_device =
            link.device_a == edge.device ? link.device_b : link.device_a;
        const Config& egress_config = network.config_for(edge.device);
        const Config& ingress_config = network.config_for(ingress_device);
        const AccessList* out_acl =
            resolve(egress_config, egress_config.FindInterface(egress_intf), false);
        const AccessList* in_acl =
            resolve(ingress_config, ingress_config.FindInterface(ingress_intf), true);
        if (out_acl != nullptr) {
          scaffold.checks.push_back({e, out_acl});
        }
        if (in_acl != nullptr) {
          scaffold.checks.push_back({e, in_acl});
        }
        break;
      }
      case EtgEdgeKind::kEndpointSrc: {
        scaffold.src_edges_by_subnet[static_cast<size_t>(edge.subnet)].push_back(e);
        const Subnet& subnet = network.subnets()[static_cast<size_t>(edge.subnet)];
        const Config& config = network.config_for(subnet.device);
        const AccessList* acl =
            resolve(config, config.FindInterface(subnet.interface), true);
        if (acl != nullptr) {
          scaffold.checks.push_back({e, acl});
        }
        break;
      }
      case EtgEdgeKind::kEndpointDst: {
        const Subnet& subnet = network.subnets()[static_cast<size_t>(edge.subnet)];
        const Config& config = network.config_for(subnet.device);
        const AccessList* acl =
            resolve(config, config.FindInterface(subnet.interface), false);
        if (acl != nullptr) {
          scaffold.checks.push_back({e, acl});
        }
        break;
      }
      case EtgEdgeKind::kIntraSelf:
      case EtgEdgeKind::kRedistribution:
        break;
    }
  }
  return scaffold;
}

}  // namespace

bool ProcessBlocksDestination(const Network& network, ProcessId process,
                              const Ipv4Prefix& destination) {
  const DistributeList* dist_list = ProcessDistributeList(network, process);
  if (dist_list == nullptr) {
    return false;
  }
  const RoutingProcess& proc = network.processes()[static_cast<size_t>(process)];
  const PrefixList* prefix_list =
      network.config_for(proc.device).FindPrefixList(dist_list->prefix_list);
  if (prefix_list == nullptr) {
    return false;  // Undefined prefix list: no filtering.
  }
  return !prefix_list->Permits(destination);
}

bool AdjacencyConfigured(const Network& network, const CandidateEdge& edge) {
  assert(edge.kind == EtgEdgeKind::kInterDevice);
  if (!edge.adjacency_realizable) {
    return false;
  }
  const RoutingProcess& from_proc =
      network.processes()[static_cast<size_t>(edge.from_process)];
  const RoutingProcess& to_proc = network.processes()[static_cast<size_t>(edge.to_process)];
  const TopoLink& link = network.links()[static_cast<size_t>(edge.link)];
  auto [egress_intf, ingress_intf] = OrientLink(link, edge.device);
  switch (from_proc.kind) {
    case RouteSource::kOspf:
      return network.ProcessUsesInterface(edge.from_process, egress_intf) &&
             network.ProcessUsesInterface(edge.to_process, ingress_intf) &&
             !OspfInterfacePassive(network, edge.from_process, egress_intf) &&
             !OspfInterfacePassive(network, edge.to_process, ingress_intf);
    case RouteSource::kRip:
      return network.ProcessUsesInterface(edge.from_process, egress_intf) &&
             network.ProcessUsesInterface(edge.to_process, ingress_intf);
    case RouteSource::kBgp: {
      DeviceId to_device = to_proc.device;
      DeviceId from_device = from_proc.device;
      return BgpSessionConfigured(network, edge.from_process, to_device, ingress_intf,
                                  to_proc.protocol_id) &&
             BgpSessionConfigured(network, edge.to_process, from_device, egress_intf,
                                  from_proc.protocol_id);
    }
    case RouteSource::kConnected:
    case RouteSource::kStatic:
      return false;
  }
  return false;
}

bool RedistributionConfigured(const Network& network, const CandidateEdge& edge) {
  assert(edge.kind == EtgEdgeKind::kRedistribution);
  // `from_process` (whose I vertex the edge leaves) is the process that
  // advertises the routes, i.e. the one configured with `redistribute`.
  const RoutingProcess& redistributing =
      network.processes()[static_cast<size_t>(edge.from_process)];
  const RoutingProcess& source = network.processes()[static_cast<size_t>(edge.to_process)];
  const Config& config = network.config_for(redistributing.device);
  const std::vector<Redistribution>* redists = nullptr;
  switch (redistributing.kind) {
    case RouteSource::kOspf: {
      const OspfConfig* ospf = config.FindOspf(redistributing.protocol_id);
      if (ospf == nullptr) {
        return false;
      }
      redists = &ospf->redistributes;
      break;
    }
    case RouteSource::kBgp:
      if (!config.bgp.has_value()) {
        return false;
      }
      redists = &config.bgp->redistributes;
      break;
    case RouteSource::kRip:
      if (!config.rip.has_value()) {
        return false;
      }
      redists = &config.rip->redistributes;
      break;
    case RouteSource::kConnected:
    case RouteSource::kStatic:
      return false;
  }
  for (const Redistribution& redist : *redists) {
    if (redist.from == source.kind &&
        (redist.from == RouteSource::kRip || redist.process_id == source.protocol_id)) {
      return true;
    }
  }
  return false;
}

bool LinkAclBlocks(const Network& network, LinkId link_id, DeviceId egress_device,
                   const TrafficClass& tc) {
  const TopoLink& link = network.links()[static_cast<size_t>(link_id)];
  auto [egress_intf, ingress_intf] = OrientLink(link, egress_device);
  DeviceId ingress_device = link.device_a == egress_device ? link.device_b : link.device_a;
  const Config& egress_config = network.config_for(egress_device);
  const Config& ingress_config = network.config_for(ingress_device);
  const InterfaceConfig* out_intf = egress_config.FindInterface(egress_intf);
  const InterfaceConfig* in_intf = ingress_config.FindInterface(ingress_intf);
  return (out_intf != nullptr && AclBlocks(egress_config, out_intf->acl_out, tc)) ||
         (in_intf != nullptr && AclBlocks(ingress_config, in_intf->acl_in, tc));
}

bool EndpointAclBlocks(const Network& network, SubnetId subnet_id, bool src_side,
                       const TrafficClass& tc) {
  const Subnet& subnet = network.subnets()[static_cast<size_t>(subnet_id)];
  const Config& config = network.config_for(subnet.device);
  const InterfaceConfig* intf = config.FindInterface(subnet.interface);
  if (intf == nullptr) {
    return false;
  }
  return AclBlocks(config, src_side ? intf->acl_in : intf->acl_out, tc);
}

bool StaticRouteConfigured(const Network& network, DeviceId device, LinkId link,
                           const Ipv4Prefix& dst) {
  const Config& config = network.config_for(device);
  for (const StaticRouteConfig& route : config.static_routes) {
    if (!route.prefix.Contains(dst)) {
      continue;
    }
    auto next_hop = network.ResolveNextHop(device, route.next_hop);
    if (next_hop.has_value() && next_hop->link == link) {
      return true;
    }
  }
  return false;
}

Harc Harc::Build(const Network& network) {
  obs::StageSpan span("harc.build");
  Harc harc;
  harc.universe_ = std::make_shared<const EtgUniverse>(EtgUniverse::Build(network));
  const EtgUniverse& universe = *harc.universe_;
  const int subnet_count = static_cast<int>(network.subnets().size());
  {
    obs::Registry& registry = obs::CurrentRegistry();
    registry.gauge("harc.subnets").Set(subnet_count);
    registry.gauge("harc.candidate_vertices").Set(universe.VertexCount());
    registry.gauge("harc.candidate_edges").Set(universe.EdgeCount());
    // Per-traffic-class ETGs: one per ordered (src, dst) subnet pair.
    registry.gauge("harc.tcetgs").Set(static_cast<int64_t>(subnet_count) *
                                      (subnet_count - 1));
  }

  // ---- aETG: adjacencies and redistribution (applies to everything). ----
  harc.aetg_ = Etg(&universe);
  for (int e = 0; e < universe.EdgeCount(); ++e) {
    const CandidateEdge& edge = universe.edge(e);
    switch (edge.kind) {
      case EtgEdgeKind::kIntraSelf:
      case EtgEdgeKind::kEndpointSrc:
      case EtgEdgeKind::kEndpointDst:
        harc.aetg_.SetPresent(e, true);
        break;
      case EtgEdgeKind::kRedistribution:
        harc.aetg_.SetPresent(e, RedistributionConfigured(network, edge));
        break;
      case EtgEdgeKind::kInterDevice:
        harc.aetg_.SetPresent(e, AdjacencyConfigured(network, edge));
        break;
    }
  }

  // ---- dETGs: plus route filters and static routes (per destination). ----
  harc.detgs_.reserve(static_cast<size_t>(subnet_count));
  for (SubnetId d = 0; d < subnet_count; ++d) {
    harc.detgs_.push_back(BuildDetgLayer(network, universe, harc.aetg_, d));
  }

  // ---- tcETGs: plus ACLs (per traffic class). ----
  //
  // Assembled via the scaffold instead of BuildTcetgLayer: per destination,
  // start from the dETG with every endpoint-source edge cleared, then per
  // source restore that source's own edges and apply the (typically few)
  // resolved ACL checks. Same result as the naive per-pair derivation —
  // arc_test holds the two paths equal — at a bitmap copy per pair instead
  // of an O(E) re-scan with name lookups.
  const TcetgScaffold scaffold = BuildTcetgScaffold(network, universe);
  harc.tcetgs_.assign(static_cast<size_t>(subnet_count) * static_cast<size_t>(subnet_count),
                      Etg());
  for (SubnetId d = 0; d < subnet_count; ++d) {
    const Etg& detg = harc.detgs_[static_cast<size_t>(d)];
    Etg base = detg;
    for (const std::vector<CandidateEdgeId>& edges : scaffold.src_edges_by_subnet) {
      for (CandidateEdgeId e : edges) {
        base.SetPresent(e, false);
      }
    }
    const Ipv4Prefix& dst_prefix = network.subnets()[static_cast<size_t>(d)].prefix;
    for (SubnetId s = 0; s < subnet_count; ++s) {
      if (s == d) {
        continue;
      }
      Etg tcetg = base;
      for (CandidateEdgeId e :
           scaffold.src_edges_by_subnet[static_cast<size_t>(s)]) {
        tcetg.SetPresent(e, detg.IsPresent(e));
      }
      if (!scaffold.checks.empty()) {
        const TrafficClass tc(network.subnets()[static_cast<size_t>(s)].prefix,
                              dst_prefix);
        for (const TcetgScaffold::AclCheck& check : scaffold.checks) {
          if (tcetg.IsPresent(check.edge) && !check.acl->Permits(tc)) {
            tcetg.SetPresent(check.edge, false);
          }
        }
      }
      harc.tcetgs_[harc.TcIndex(s, d)] = std::move(tcetg);
    }
  }

  return harc;
}

void Harc::RebuildDestination(SubnetId dst) {
  const Network& network = universe_->network();
  detgs_[static_cast<size_t>(dst)] = BuildDetgLayer(network, *universe_, aetg_, dst);
  const int subnet_count = SubnetCount();
  for (SubnetId s = 0; s < subnet_count; ++s) {
    if (s != dst) {
      tcetgs_[TcIndex(s, dst)] =
          BuildTcetgLayer(network, *universe_, detgs_[static_cast<size_t>(dst)], s, dst);
    }
  }
}

void Harc::RebuildTrafficClass(SubnetId src, SubnetId dst) {
  tcetgs_[TcIndex(src, dst)] = BuildTcetgLayer(
      universe_->network(), *universe_, detgs_[static_cast<size_t>(dst)], src, dst);
}

std::optional<Harc> Harc::CloneFor(const Network& network) const {
  auto universe = std::make_shared<const EtgUniverse>(EtgUniverse::Build(network));
  if (universe->VertexCount() != universe_->VertexCount() ||
      universe->EdgeCount() != universe_->EdgeCount()) {
    return std::nullopt;
  }
  for (int e = 0; e < universe->EdgeCount(); ++e) {
    const CandidateEdge& a = universe->edge(e);
    const CandidateEdge& b = universe_->edge(e);
    // Field-by-field: a snapshot that moved a link, renamed a process, or
    // changed an OSPF cost (default_weight) produces a different universe
    // and must rebuild from scratch.
    if (a.from != b.from || a.to != b.to || a.kind != b.kind ||
        a.from_process != b.from_process || a.to_process != b.to_process ||
        a.link != b.link || a.subnet != b.subnet || a.device != b.device ||
        a.default_weight != b.default_weight || a.waypoint != b.waypoint ||
        a.adjacency_realizable != b.adjacency_realizable) {
      return std::nullopt;
    }
  }
  Harc clone = *this;
  clone.universe_ = std::move(universe);
  const EtgUniverse* raw = clone.universe_.get();
  clone.aetg_.RebindUniverse(raw);
  for (Etg& detg : clone.detgs_) {
    detg.RebindUniverse(raw);
  }
  // Includes the (never-queried) diagonal placeholders; rebinding them is
  // harmless and keeps the loop uniform.
  for (Etg& tcetg : clone.tcetgs_) {
    tcetg.RebindUniverse(raw);
  }
  return clone;
}

Status Harc::CheckHierarchy() const {
  const EtgUniverse& universe = *universe_;
  const int subnet_count = SubnetCount();
  for (SubnetId d = 0; d < subnet_count; ++d) {
    const Etg& detg = detgs_[static_cast<size_t>(d)];
    for (int e = 0; e < universe.EdgeCount(); ++e) {
      if (detg.IsPresent(e) && !aetg_.IsPresent(e) &&
          universe.edge(e).kind != EtgEdgeKind::kInterDevice) {
        return Error("dETG " + std::to_string(d) + " edge " + std::to_string(e) +
                     " is absent from the aETG and not static-route-realizable");
      }
    }
    for (SubnetId s = 0; s < subnet_count; ++s) {
      if (s == d) {
        continue;
      }
      const Etg& tcetg = tcetgs_[TcIndex(s, d)];
      for (int e = 0; e < universe.EdgeCount(); ++e) {
        if (tcetg.IsPresent(e) && !detg.IsPresent(e)) {
          return Error("tcETG (" + std::to_string(s) + "," + std::to_string(d) + ") edge " +
                       std::to_string(e) + " violates the tcETG<=dETG hierarchy");
        }
      }
    }
  }
  return Status::Ok();
}

void Harc::ApplyWeightOverride(CandidateEdgeId edge, double weight) {
  aetg_.SetWeight(edge, weight);
  for (Etg& detg : detgs_) {
    detg.SetWeight(edge, weight);
  }
  const int subnet_count = SubnetCount();
  for (SubnetId s = 0; s < subnet_count; ++s) {
    for (SubnetId d = 0; d < subnet_count; ++d) {
      if (s != d) {
        tcetgs_[TcIndex(s, d)].SetWeight(edge, weight);
      }
    }
  }
}

bool Harc::IsStaticRouteEdge(SubnetId dst, CandidateEdgeId edge) const {
  return detgs_[static_cast<size_t>(dst)].IsPresent(edge) && !aetg_.IsPresent(edge);
}

}  // namespace cpr
