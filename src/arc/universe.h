// The ETG universe: shared vertex layout and candidate edge set for all ETGs
// of one network.
//
// HARC's hierarchy constraints (paper §4.3, §5.1 constraints 18-19) and soft
// constraints (Table 2) relate "the same edge" across tcETGs, dETGs, and the
// aETG. To make that identity first-class, every ETG of a network is a
// presence bitmap over one shared *candidate edge* universe:
//
//  * two vertices (in/out) per routing process, one vertex per host subnet;
//  * an intra-device self edge per process (procI -> procO, always present);
//  * a candidate redistribution edge for every ordered pair of distinct
//    processes on a device;
//  * a candidate inter-device edge per physical link direction and process
//    pair across it (footnote 6: edges may only be added where a physical
//    link exists);
//  * endpoint edges between subnet vertices and the attached device's
//    processes.
//
// Whether a candidate is *present* in a given ETG is decided by the builder
// (Algorithm 1); whether it *may become present at the aETG level* is the
// `adjacency_realizable` flag (a routing adjacency needs same-protocol
// processes; a dETG-only edge can instead be realized by a static route).

#ifndef CPR_SRC_ARC_UNIVERSE_H_
#define CPR_SRC_ARC_UNIVERSE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/digraph.h"
#include "topo/network.h"

namespace cpr {

// Index of a candidate edge within the universe.
using CandidateEdgeId = int;

enum class EtgEdgeKind {
  kIntraSelf,        // procI -> procO of one process
  kRedistribution,   // procI of one process -> procO of another, same device
  kInterDevice,      // procO -> procI across a physical link
  kEndpointSrc,      // subnet vertex -> procO on the attached device
  kEndpointDst,      // procI on the attached device -> subnet vertex
};

struct CandidateEdge {
  VertexId from = kInvalidVertex;
  VertexId to = kInvalidVertex;
  EtgEdgeKind kind = EtgEdgeKind::kInterDevice;
  // The process owning the `from` endpoint (I or O vertex); -1 for subnet
  // endpoints.
  ProcessId from_process = -1;
  ProcessId to_process = -1;
  LinkId link = -1;      // kInterDevice only
  SubnetId subnet = -1;  // endpoint edges only
  DeviceId device = -1;  // device owning the edge (intra/endpoint); egress
                         // device for inter-device edges
  // Default weight from configurations (egress interface OSPF cost for
  // inter-device edges; 0 otherwise).
  double default_weight = 0.0;
  // True when the underlying physical link carries a waypoint (wedge flag).
  bool waypoint = false;
  // True when this edge could be realized by a routing adjacency
  // (same-protocol processes on both ends) and hence may appear in the aETG.
  bool adjacency_realizable = false;
};

class EtgUniverse {
 public:
  static EtgUniverse Build(const Network& network);

  const Network& network() const { return *network_; }

  int VertexCount() const { return vertex_count_; }
  int EdgeCount() const { return static_cast<int>(edges_.size()); }
  const std::vector<CandidateEdge>& edges() const { return edges_; }
  const CandidateEdge& edge(CandidateEdgeId id) const {
    return edges_[static_cast<size_t>(id)];
  }

  VertexId ProcessIn(ProcessId process) const { return 2 * process; }
  VertexId ProcessOut(ProcessId process) const { return 2 * process + 1; }
  VertexId SubnetVertex(SubnetId subnet) const {
    return 2 * static_cast<VertexId>(network_->processes().size()) + subnet;
  }

  // Candidate edge from `from` to `to`, if one exists.
  std::optional<CandidateEdgeId> FindEdge(VertexId from, VertexId to) const;

  // Human-readable vertex label, e.g. "B.ospf10.in" or "net:10.20.0.0/16".
  std::string VertexName(VertexId vertex) const;

 private:
  const Network* network_ = nullptr;
  int vertex_count_ = 0;
  std::vector<CandidateEdge> edges_;
  std::unordered_map<int64_t, CandidateEdgeId> edge_index_;
};

}  // namespace cpr

#endif  // CPR_SRC_ARC_UNIVERSE_H_
