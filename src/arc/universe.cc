#include "arc/universe.h"

#include <cassert>

namespace cpr {

namespace {

int64_t EdgeKey(VertexId from, VertexId to) {
  return (static_cast<int64_t>(from) << 32) | static_cast<uint32_t>(to);
}

}  // namespace

EtgUniverse EtgUniverse::Build(const Network& network) {
  EtgUniverse universe;
  universe.network_ = &network;
  universe.vertex_count_ = 2 * static_cast<int>(network.processes().size()) +
                           static_cast<int>(network.subnets().size());

  auto add_edge = [&universe](CandidateEdge edge) {
    CandidateEdgeId id = static_cast<CandidateEdgeId>(universe.edges_.size());
    universe.edge_index_[EdgeKey(edge.from, edge.to)] = id;
    universe.edges_.push_back(edge);
  };

  const auto& processes = network.processes();
  const auto& devices = network.devices();

  // Intra-device self edges and candidate redistribution edges.
  for (size_t d = 0; d < devices.size(); ++d) {
    const Device& device = devices[d];
    for (ProcessId p : device.processes) {
      CandidateEdge self;
      self.from = universe.ProcessIn(p);
      self.to = universe.ProcessOut(p);
      self.kind = EtgEdgeKind::kIntraSelf;
      self.from_process = p;
      self.to_process = p;
      self.device = static_cast<DeviceId>(d);
      add_edge(self);
    }
    for (ProcessId p_in : device.processes) {
      for (ProcessId p_out : device.processes) {
        if (p_in == p_out) {
          continue;
        }
        // procI of the redistributing process -> procO of the process whose
        // routes it redistributes (see Algorithm 1 line 8).
        CandidateEdge redist;
        redist.from = universe.ProcessIn(p_in);
        redist.to = universe.ProcessOut(p_out);
        redist.kind = EtgEdgeKind::kRedistribution;
        redist.from_process = p_in;
        redist.to_process = p_out;
        redist.device = static_cast<DeviceId>(d);
        add_edge(redist);
      }
    }
  }

  // Inter-device candidates: each link direction x (egress process, ingress
  // process).
  const auto& links = network.links();
  for (size_t l = 0; l < links.size(); ++l) {
    const TopoLink& link = links[l];
    struct Direction {
      DeviceId from_device;
      std::string from_interface;
      DeviceId to_device;
    };
    const Direction directions[2] = {
        {link.device_a, link.interface_a, link.device_b},
        {link.device_b, link.interface_b, link.device_a},
    };
    for (const Direction& dir : directions) {
      const Config& from_config = network.config_for(dir.from_device);
      const InterfaceConfig* egress = from_config.FindInterface(dir.from_interface);
      assert(egress != nullptr);
      for (ProcessId p_from : devices[static_cast<size_t>(dir.from_device)].processes) {
        for (ProcessId p_to : devices[static_cast<size_t>(dir.to_device)].processes) {
          CandidateEdge inter;
          inter.from = universe.ProcessOut(p_from);
          inter.to = universe.ProcessIn(p_to);
          inter.kind = EtgEdgeKind::kInterDevice;
          inter.from_process = p_from;
          inter.to_process = p_to;
          inter.link = static_cast<LinkId>(l);
          inter.device = dir.from_device;
          inter.default_weight = egress->ospf_cost;
          inter.waypoint = link.waypoint;
          inter.adjacency_realizable =
              processes[static_cast<size_t>(p_from)].kind ==
              processes[static_cast<size_t>(p_to)].kind;
          add_edge(inter);
        }
      }
    }
  }

  // Endpoint edges: subnet -> procO and procI -> subnet on the attached
  // device.
  const auto& subnets = network.subnets();
  for (size_t s = 0; s < subnets.size(); ++s) {
    const Subnet& subnet = subnets[s];
    for (ProcessId p : devices[static_cast<size_t>(subnet.device)].processes) {
      CandidateEdge src;
      src.from = universe.SubnetVertex(static_cast<SubnetId>(s));
      src.to = universe.ProcessOut(p);
      src.kind = EtgEdgeKind::kEndpointSrc;
      src.to_process = p;
      src.subnet = static_cast<SubnetId>(s);
      src.device = subnet.device;
      add_edge(src);

      CandidateEdge dst;
      dst.from = universe.ProcessIn(p);
      dst.to = universe.SubnetVertex(static_cast<SubnetId>(s));
      dst.kind = EtgEdgeKind::kEndpointDst;
      dst.from_process = p;
      dst.subnet = static_cast<SubnetId>(s);
      dst.device = subnet.device;
      add_edge(dst);
    }
  }

  return universe;
}

std::optional<CandidateEdgeId> EtgUniverse::FindEdge(VertexId from, VertexId to) const {
  auto it = edge_index_.find(EdgeKey(from, to));
  if (it == edge_index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string EtgUniverse::VertexName(VertexId vertex) const {
  const int process_vertices = 2 * static_cast<int>(network_->processes().size());
  if (vertex < process_vertices) {
    ProcessId p = vertex / 2;
    const RoutingProcess& proc = network_->processes()[static_cast<size_t>(p)];
    const Device& device = network_->devices()[static_cast<size_t>(proc.device)];
    std::string name = device.name + "." + RouteSourceName(proc.kind);
    if (proc.protocol_id != 0) {
      name += std::to_string(proc.protocol_id);
    }
    name += (vertex % 2 == 0) ? ".in" : ".out";
    return name;
  }
  SubnetId s = vertex - process_vertices;
  return "net:" + network_->subnets()[static_cast<size_t>(s)].prefix.ToString();
}

}  // namespace cpr
