#include "arc/etg.h"

#include <algorithm>

#include "graph/max_flow.h"

namespace cpr {

int Etg::PresentEdgeCount() const {
  return static_cast<int>(std::count(present_.begin(), present_.end(), true));
}

Digraph Etg::ToDigraph() const {
  Digraph graph(universe_->VertexCount());
  for (int e = 0; e < universe_->EdgeCount(); ++e) {
    const CandidateEdge& candidate = universe_->edge(e);
    EdgeId id = graph.AddEdge(candidate.from, candidate.to, weight(e));
    if (!present_[static_cast<size_t>(e)]) {
      graph.RemoveEdge(id);
    }
  }
  return graph;
}

std::vector<int> Etg::LinkDisjointCapacities() const {
  std::vector<int> capacity(static_cast<size_t>(universe_->EdgeCount()), kInfiniteCapacity);
  for (int e = 0; e < universe_->EdgeCount(); ++e) {
    if (universe_->edge(e).kind == EtgEdgeKind::kInterDevice) {
      capacity[static_cast<size_t>(e)] = 1;
    }
  }
  return capacity;
}

}  // namespace cpr
