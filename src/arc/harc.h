// Hierarchical ARC (HARC), paper §4.3.
//
// A HARC is three layers of ETGs over one candidate edge universe:
//
//   aETG   — one graph capturing routing adjacencies and redistribution,
//            which apply to *all* traffic classes;
//   dETG   — one graph per destination subnet, additionally applying
//            static routes and route filters (destination-scoped);
//   tcETG  — one graph per traffic class, additionally applying ACLs
//            (traffic-class-scoped).
//
// The hierarchy invariant: every edge present in a tcETG is present in its
// dETG, and every dETG edge not arising from a static route is present in
// the aETG. Build() constructs all layers from the network's configurations
// by Algorithm 1; CheckHierarchy() validates the invariant (tests and the
// repair decoder rely on it).

#ifndef CPR_SRC_ARC_HARC_H_
#define CPR_SRC_ARC_HARC_H_

#include <memory>
#include <optional>
#include <vector>

#include "arc/etg.h"
#include "arc/universe.h"
#include "netbase/result.h"
#include "topo/network.h"

namespace cpr {

class Harc {
 public:
  // Builds the full HARC for a network. The network must outlive the HARC.
  static Harc Build(const Network& network);

  const EtgUniverse& universe() const { return *universe_; }
  const Network& network() const { return universe_->network(); }

  const Etg& aetg() const { return aetg_; }
  Etg& mutable_aetg() { return aetg_; }

  const Etg& detg(SubnetId dst) const { return detgs_[static_cast<size_t>(dst)]; }
  Etg& mutable_detg(SubnetId dst) { return detgs_[static_cast<size_t>(dst)]; }

  const Etg& tcetg(SubnetId src, SubnetId dst) const {
    return tcetgs_[TcIndex(src, dst)];
  }
  Etg& mutable_tcetg(SubnetId src, SubnetId dst) { return tcetgs_[TcIndex(src, dst)]; }

  int SubnetCount() const { return static_cast<int>(detgs_.size()); }

  // SRC/DST vertices of a traffic class's tcETG.
  VertexId SrcVertex(SubnetId src) const { return universe_->SubnetVertex(src); }
  VertexId DstVertex(SubnetId dst) const { return universe_->SubnetVertex(dst); }

  // Verifies hierarchy constraints 18-19 (§5.1) hold on every layer.
  Status CheckHierarchy() const;

  // Overrides the weight of a candidate edge in every ETG of the HARC (edge
  // costs are global across ETGs; used when a PC4 repair changes a cost).
  void ApplyWeightOverride(CandidateEdgeId edge, double weight);

  // True when a dETG edge is attributable to a static route (present in the
  // dETG but either absent from the aETG or not adjacency-realizable).
  bool IsStaticRouteEdge(SubnetId dst, CandidateEdgeId edge) const;

  // --- Incremental rebuilds (src/incremental; DESIGN.md §12) ---
  //
  // Re-derives one destination's dETG (and every tcETG toward it) from the
  // current aETG and the universe's network, by exactly the rules Build()
  // applies. The incremental engine calls this for destinations the config
  // differ marked dirty, leaving clean ETGs untouched.
  void RebuildDestination(SubnetId dst);
  // Re-derives a single tcETG from the current dETG(dst); for (src, dst)
  // pairs dirtied by ACL-only changes.
  void RebuildTrafficClass(SubnetId src, SubnetId dst);

  // Clones this HARC onto a re-parsed network snapshot: builds a fresh
  // universe from `network`, verifies it is structurally identical to this
  // HARC's universe (same edge vector, field for field — config edits that
  // alter topology, process layout, or OSPF costs fail the check), and
  // returns a copy whose ETGs are rebound to the new universe. nullopt means
  // "not cloneable, run Build() from scratch". The clone's presence bitmaps
  // still describe the *old* configurations; callers must RebuildDestination
  // every dirty destination afterwards.
  std::optional<Harc> CloneFor(const Network& network) const;

  // Harc is copyable: copies share the (immutable) universe, so a repair can
  // clone the original and mutate presence bitmaps in place.

 private:
  size_t TcIndex(SubnetId src, SubnetId dst) const {
    return static_cast<size_t>(src) * detgs_.size() + static_cast<size_t>(dst);
  }

  std::shared_ptr<const EtgUniverse> universe_;
  Etg aetg_;
  std::vector<Etg> detgs_;
  std::vector<Etg> tcetgs_;  // SubnetCount^2, diagonal unused.
};

// --- Building blocks shared with the translator -----------------------------

// Whether `process` is configured to filter routes toward `destination`
// (its distribute-list's prefix list denies the destination prefix).
bool ProcessBlocksDestination(const Network& network, ProcessId process,
                              const Ipv4Prefix& destination);

// Whether the routing adjacency modeled by an inter-device candidate edge is
// currently established by the configurations (same protocol, both sides
// configured on the link, neither passive; BGP checks neighbor statements).
bool AdjacencyConfigured(const Network& network, const CandidateEdge& edge);

// Whether the redistribution modeled by a redistribution candidate edge is
// configured (the from-process redistributes the to-process's routes).
bool RedistributionConfigured(const Network& network, const CandidateEdge& edge);

// Whether ACLs currently block `tc` crossing `link` in the direction leaving
// `egress_device` (egress interface out-ACL or ingress interface in-ACL).
bool LinkAclBlocks(const Network& network, LinkId link, DeviceId egress_device,
                   const TrafficClass& tc);

// Whether an ACL blocks `tc` at a host-facing subnet interface: the in-ACL
// when the subnet is the traffic source, the out-ACL when it is the
// destination.
bool EndpointAclBlocks(const Network& network, SubnetId subnet, bool src_side,
                       const TrafficClass& tc);

// Whether a static route on `device` covers `dst` with a next hop across
// `link`.
bool StaticRouteConfigured(const Network& network, DeviceId device, LinkId link,
                           const Ipv4Prefix& dst);

}  // namespace cpr

#endif  // CPR_SRC_ARC_HARC_H_
