// An extended topology graph (ETG): a presence bitmap plus sparse weight
// overrides over the network's candidate edge universe.
//
// ARC models the control plane's forwarding behaviour for one traffic class
// as a digraph whose paths are exactly the paths the network can use under
// some failure combination (pathset-equivalence, paper §4.1). HARC keeps
// three flavours — tcETG, dETG, aETG — that differ only in which candidate
// edges are present, so one type represents all of them.
//
// Edge weights default to the universe's configuration-derived values (OSPF
// interface costs); only repaired weights are stored per-ETG. This keeps a
// network with tens of thousands of traffic classes (the paper's largest has
// 82K) at a bit per candidate edge per tcETG.

#ifndef CPR_SRC_ARC_ETG_H_
#define CPR_SRC_ARC_ETG_H_

#include <unordered_map>
#include <vector>

#include "arc/universe.h"
#include "graph/digraph.h"

namespace cpr {

class Etg {
 public:
  Etg() = default;
  explicit Etg(const EtgUniverse* universe)
      : universe_(universe), present_(static_cast<size_t>(universe->EdgeCount()), false) {}

  const EtgUniverse& universe() const { return *universe_; }

  bool IsPresent(CandidateEdgeId edge) const { return present_[static_cast<size_t>(edge)]; }
  void SetPresent(CandidateEdgeId edge, bool present) {
    present_[static_cast<size_t>(edge)] = present;
  }

  double weight(CandidateEdgeId edge) const {
    auto it = weight_overrides_.find(edge);
    return it != weight_overrides_.end() ? it->second
                                         : universe_->edge(edge).default_weight;
  }
  void SetWeight(CandidateEdgeId edge, double weight) { weight_overrides_[edge] = weight; }
  const std::unordered_map<CandidateEdgeId, double>& weight_overrides() const {
    return weight_overrides_;
  }

  int PresentEdgeCount() const;

  // Materializes the ETG as a Digraph whose edge ids equal candidate edge
  // ids (absent candidates are added then logically removed, keeping the id
  // spaces aligned for algorithms that report edges back).
  Digraph ToDigraph() const;

  // Capacities for link-disjoint max-flow (PC3, Table 1): inter-device edges
  // get capacity 1, everything else is effectively uncapacitated. Sized for
  // the digraph returned by ToDigraph().
  std::vector<int> LinkDisjointCapacities() const;

  // Re-points the ETG at a different universe instance. Only valid when the
  // new universe is structurally identical to the old one (same edge vector,
  // field for field) — Harc::CloneFor verifies that before rebinding, which
  // is what lets a retained HARC migrate onto a re-parsed network snapshot
  // without rebuilding its presence bitmaps.
  void RebindUniverse(const EtgUniverse* universe) { universe_ = universe; }

  bool operator==(const Etg& other) const = default;

 private:
  const EtgUniverse* universe_ = nullptr;
  std::vector<bool> present_;
  std::unordered_map<CandidateEdgeId, double> weight_overrides_;
};

}  // namespace cpr

#endif  // CPR_SRC_ARC_ETG_H_
