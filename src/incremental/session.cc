#include "incremental/session.h"

#include <algorithm>
#include <utility>

#include "verify/checker.h"

namespace cpr::incremental {

MaxSmtBackend* WarmBackendStore::BackendFor(const std::string& key,
                                            BackendChoice choice) {
  std::lock_guard<std::mutex> lock(mu_);
  auto map_key = std::make_pair(key, static_cast<int>(choice));
  auto it = backends_.find(map_key);
  if (it == backends_.end()) {
    std::unique_ptr<MaxSmtBackend> backend = choice == BackendChoice::kZ3
                                                 ? MakeWarmZ3Backend()
                                                 : MakeWarmInternalBackend();
    it = backends_.emplace(std::move(map_key), std::move(backend)).first;
  }
  return it->second.get();
}

int64_t WarmBackendStore::instances() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(backends_.size());
}

Result<std::shared_ptr<RepairSession>> BuildSession(std::vector<Config> configs,
                                                    NetworkAnnotations annotations,
                                                    std::vector<Policy> policies,
                                                    const RepairOptions& options) {
  Result<Network> network = Network::Build(std::move(configs), annotations);
  if (!network.ok()) {
    return Error("incremental baseline: " + network.error().message());
  }
  auto session = std::make_shared<RepairSession>();
  session->network = std::make_unique<const Network>(std::move(network).value());
  session->harc = std::make_unique<const Harc>(Harc::Build(*session->network));
  session->annotations = std::move(annotations);
  session->policies = std::move(policies);

  const std::vector<Policy> violations =
      FindViolations(*session->harc, session->policies);
  const auto violated = [&violations](const Policy& policy) {
    return std::find(violations.begin(), violations.end(), policy) != violations.end();
  };
  for (const RepairProblem& problem :
       PartitionAllGroups(*session->harc, session->policies, options)) {
    GroupRecord record;
    record.dsts = problem.dsts;
    record.tcs = problem.tcs;
    record.policies = problem.policies;
    record.satisfied = std::none_of(problem.policies.begin(), problem.policies.end(), violated);
    session->groups.push_back(std::move(record));
  }
  return session;
}

}  // namespace cpr::incremental
