// Incremental re-repair engine orchestration (DESIGN.md §12).
//
// Given a retained RepairSession and a new snapshot of the same lineage, the
// engine (1) uses the config differ's dirty set to clone the session's HARC
// onto the new snapshot, rebuilding only dirty destinations; (2) reuses the
// baseline verdict of every clean satisfied group and hands exactly the
// dirty groups back to the unchanged repair engine, with warm-started
// per-problem solvers and the O(S^2 E) merge-propagation pass disabled;
// (3) translates the merged edits and re-verifies the patched snapshot
// concretely — a from-scratch network and HARC rebuild, exactly like the
// ordinary pipeline's close-the-loop step. Any residual violation (or a
// failed scoped solve) disengages the incremental result entirely and the
// caller runs the full pipeline, so soundness never depends on the dirty-set
// analysis or the HARC clone.

#ifndef CPR_SRC_INCREMENTAL_INCREMENTAL_H_
#define CPR_SRC_INCREMENTAL_INCREMENTAL_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arc/harc.h"
#include "incremental/dirty.h"
#include "incremental/session.h"
#include "incremental/stats.h"
#include "netbase/result.h"
#include "obs/provenance.h"
#include "repair/repair.h"
#include "topo/network.h"
#include "translate/translator.h"
#include "verify/policy.h"

namespace cpr::incremental {

// A complete repair produced by the incremental engine, shaped exactly like
// the compression pre-pass's result so the core pipeline consumes both the
// same way. `rebuilt_network`/`rebuilt_harc` are the concretely re-verified
// patched pair for CloseLoop to reuse instead of rebuilding.
struct IncrementalRepairResult {
  RepairStatus status = RepairStatus::kSuccess;
  RepairEdits edits;
  std::vector<Config> patched_configs;
  NetworkAnnotations patched_annotations;
  std::vector<std::string> change_log;
  std::string diff_text;
  int lines_changed = 0;
  int64_t predicted_cost = 0;
  RepairStats stats;
  obs::ProvenanceReport provenance;
  std::vector<EditTrace> edit_traces;
  std::unique_ptr<Network> rebuilt_network;
  std::unique_ptr<Harc> rebuilt_harc;
};

struct IncrementalOutcome {
  // Engaged when the incremental path produced a clean, concretely
  // re-verified repair; disengaged when it declined or fell back (stats say
  // why) and the caller must run the ordinary pipeline.
  std::optional<IncrementalRepairResult> result;
  IncrementalStats stats;
};

// Clones the session's HARC onto `network`, rebuilding exactly the dirty
// destinations and traffic classes. nullopt when the dirt is global or the
// snapshots are not structurally clone-compatible (the caller builds from
// scratch). Updates the preparation fields of `stats`.
std::optional<Harc> PrepareHarc(const RepairSession& session, const Network& network,
                                const DirtySet& dirty, IncrementalStats* stats);

// Runs the incremental path on a prepared snapshot. `harc` is the current
// snapshot's HARC (ideally from PrepareHarc); `seed` carries the stats
// accumulated during preparation and is extended in place into
// outcome.stats. Structural errors (unmappable PC4 paths, a patch breaking
// the network) propagate as Error, mirroring the ordinary pipeline.
Result<IncrementalOutcome> TryIncrementalRepair(RepairSession& session,
                                                const Network& network, const Harc& harc,
                                                const DirtySet& dirty,
                                                const std::vector<Policy>& policies,
                                                const RepairOptions& options,
                                                const IncrementalStats& seed);

}  // namespace cpr::incremental

#endif  // CPR_SRC_INCREMENTAL_INCREMENTAL_H_
