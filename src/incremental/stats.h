// Metrics of one incremental re-repair attempt, for the "incremental"
// stats-json section and the incremental.* counters. This header is a leaf
// (no dependencies beyond the standard library) so core/cpr.h can embed the
// struct in CprReport without pulling the incremental engine into every
// translation unit.

#ifndef CPR_SRC_INCREMENTAL_STATS_H_
#define CPR_SRC_INCREMENTAL_STATS_H_

#include <string>

namespace cpr::incremental {

struct IncrementalStats {
  // A baseline session was supplied (cpr repair --incremental / a cprd
  // same-lineage re-submission).
  bool attempted = false;
  // The incremental path produced the final report. When false with
  // attempted true, skipped_reason says why the ordinary pipeline ran.
  bool applied = false;
  std::string skipped_reason;

  // --- Differ / HARC preparation ---
  // Devices whose configuration changed relative to the baseline snapshot.
  int devices_changed = 0;
  // The differ proved the change is not destination-scopable (topology,
  // adjacency, cost, or process changes): every ETG and group is dirty.
  bool everything_dirty = false;
  // The baseline HARC was cloned onto the new snapshot (only dirty
  // destinations rebuilt) instead of rebuilt from scratch.
  bool harc_cloned = false;
  int dirty_destinations = 0;
  int dirty_traffic_classes = 0;

  // --- Group reuse ---
  int groups_total = 0;
  // Clean groups whose baseline verdict (satisfied) was reused: neither
  // verified nor solved before the final concrete re-verification.
  int groups_reused = 0;
  // Dirty (or baseline-unsatisfied) groups handed back to the repair engine.
  int groups_resolved = 0;

  // --- Warm solver starts (from the per-problem warm backend store) ---
  int warm_hits = 0;
  int warm_misses = 0;

  // The incremental result left residual violations after the concrete
  // re-verification (or the scoped solve failed) and the ordinary
  // full-repair pipeline ran instead. Soundness never depends on the
  // dirty-set analysis: this flag is how a wrong dirty set surfaces.
  bool fell_back = false;

  double diff_seconds = 0;
  double clone_seconds = 0;
  double solve_seconds = 0;
  double verify_seconds = 0;
};

}  // namespace cpr::incremental

#endif  // CPR_SRC_INCREMENTAL_STATS_H_
