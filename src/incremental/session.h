// Repair session retention for incremental re-repair (DESIGN.md §12).
//
// A RepairSession captures everything worth keeping about a repaired (or
// verified-clean) configuration snapshot: the parsed network, its HARC, the
// policy set, a per-group verdict record over the repair engine's
// must-solve-together destination groups, and a store of warm solver
// instances keyed by problem. When the next snapshot of the same lineage
// arrives, the incremental engine diffs it against the session's
// configurations and reuses every clean group's verdict, re-solving only the
// dirty ones with warm-started solvers.

#ifndef CPR_SRC_INCREMENTAL_SESSION_H_
#define CPR_SRC_INCREMENTAL_SESSION_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "arc/harc.h"
#include "netbase/result.h"
#include "repair/options.h"
#include "repair/repair.h"
#include "solver/backend.h"
#include "topo/network.h"
#include "verify/policy.h"

namespace cpr::incremental {

// One must-solve-together destination group (the repair engine's
// PartitionAllGroups unit) with its baseline verdict.
struct GroupRecord {
  std::vector<SubnetId> dsts;
  std::vector<std::pair<SubnetId, SubnetId>> tcs;
  std::vector<Policy> policies;
  // Every policy of the group held on the session's HARC. Clean groups with
  // this set reuse the verdict outright on the next snapshot.
  bool satisfied = false;
};

// Owns warm solver instances keyed by (problem key, backend choice) and
// hands them to the repair engine through the WarmBackendProvider hook.
// Creation is guarded by a mutex so concurrent problems can request their
// backends; each returned instance must still be driven by one worker at a
// time, which the repair engine guarantees per problem key and the serve
// layer guarantees per session (a session is checked out by one request).
class WarmBackendStore : public WarmBackendProvider {
 public:
  MaxSmtBackend* BackendFor(const std::string& key, BackendChoice choice) override;

  // Distinct warm instances created so far (diagnostics).
  int64_t instances() const;

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::string, int>, std::unique_ptr<MaxSmtBackend>> backends_;
};

// Retained state of one snapshot. `network` owns the configurations
// (network->configs() is the diffing baseline); `harc` is built over it and
// is cloned — never mutated — by later re-repairs.
struct RepairSession {
  std::unique_ptr<const Network> network;
  std::unique_ptr<const Harc> harc;
  NetworkAnnotations annotations;
  std::vector<Policy> policies;
  std::vector<GroupRecord> groups;
  WarmBackendStore warm;
};

// Builds a session for a snapshot — typically the patched configurations of
// a Sound repair, so that the groups all verify satisfied and the next edit
// re-solves only what it touched. Costs one HARC build plus one full
// verification; callers amortize it across the re-repairs it enables.
Result<std::shared_ptr<RepairSession>> BuildSession(std::vector<Config> configs,
                                                    NetworkAnnotations annotations,
                                                    std::vector<Policy> policies,
                                                    const RepairOptions& options);

}  // namespace cpr::incremental

#endif  // CPR_SRC_INCREMENTAL_SESSION_H_
