#include "incremental/dirty.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace cpr::incremental {

namespace {

bool PrefixTouches(const std::optional<Ipv4Prefix>& pattern, const Ipv4Prefix& prefix) {
  return !pattern.has_value() || pattern->Overlaps(prefix);
}

// Whether `name` is bound to any interface direction of either config
// version. An ACL only influences ETGs through its applications.
bool AclReferenced(const Config& config, const std::string& name) {
  for (const InterfaceConfig& intf : config.interfaces) {
    if (intf.acl_in == name || intf.acl_out == name) {
      return true;
    }
  }
  return false;
}

// Whether `name` is applied as a distribute-list on any routing process.
bool PrefixListReferenced(const Config& config, const std::string& name) {
  for (const OspfConfig& ospf : config.ospf_processes) {
    if (ospf.distribute_list.has_value() && ospf.distribute_list->prefix_list == name) {
      return true;
    }
  }
  if (config.bgp.has_value() && config.bgp->distribute_list.has_value() &&
      config.bgp->distribute_list->prefix_list == name) {
    return true;
  }
  if (config.rip.has_value() && config.rip->distribute_list.has_value() &&
      config.rip->distribute_list->prefix_list == name) {
    return true;
  }
  return false;
}

// First-match-wins lists (ACLs, prefix lists) are diffed positionally: after
// trimming the longest common head and tail, every entry left in the middle
// of either version is marked. Soundness of trimming the tail: a candidate
// matching no middle entry of either version falls through to the same
// position of the common tail in both (it skipped the identical head the
// same way, and nothing in either middle caught it), so its fate is
// unchanged. This keeps an edit next to a trailing `permit any any` from
// dirtying the whole network.
template <typename Entry, typename Mark>
void DiffMatchLists(const std::vector<Entry>& before, const std::vector<Entry>& after,
                    const Mark& mark) {
  size_t head = 0;
  while (head < before.size() && head < after.size() && before[head] == after[head]) {
    ++head;
  }
  size_t tail = 0;
  while (tail < before.size() - head && tail < after.size() - head &&
         before[before.size() - 1 - tail] == after[after.size() - 1 - tail]) {
    ++tail;
  }
  for (size_t i = head; i < before.size() - tail; ++i) {
    mark(before[i]);
  }
  for (size_t i = head; i < after.size() - tail; ++i) {
    mark(after[i]);
  }
}

// Dirt from one ACL's entry (what traffic its match pattern covers).
void MarkAclEntry(const AclEntry& entry, DirtySet* dirty) {
  dirty->tc_dirt.push_back(TcDirt{entry.src, entry.dst});
}

// Dirt from an interface's ACL binding changing. When both sides bind a
// defined ACL (or none), only traffic either list can match is affected;
// appearing/disappearing bindings flip the implicit-deny default for
// *unmatched* traffic too, which is not scopable.
bool DiffAclBinding(const std::optional<std::string>& before_name,
                    const std::optional<std::string>& after_name, const Config& before,
                    const Config& after, DirtySet* dirty) {
  if (before_name.has_value() != after_name.has_value()) {
    return false;  // permit-all default <-> implicit deny: global.
  }
  const AccessList* before_list = before.FindAccessList(*before_name);
  const AccessList* after_list = after.FindAccessList(*after_name);
  if (before_list == nullptr || after_list == nullptr) {
    return false;  // A binding to an undefined ACL: semantics not scopable.
  }
  for (const AclEntry& entry : before_list->entries) {
    MarkAclEntry(entry, dirty);
  }
  for (const AclEntry& entry : after_list->entries) {
    MarkAclEntry(entry, dirty);
  }
  return true;
}

// Interfaces: descriptions are cosmetic, ACL bindings are traffic-class
// scoped, everything else (address, shutdown, OSPF cost) shapes the topology
// or aETG/edge weights. Returns false when the change is global.
bool DiffInterfaces(const Config& before, const Config& after, DirtySet* dirty) {
  std::map<std::string, const InterfaceConfig*> after_by_name;
  for (const InterfaceConfig& intf : after.interfaces) {
    after_by_name.emplace(intf.name, &intf);
  }
  if (before.interfaces.size() != after.interfaces.size()) {
    return false;
  }
  for (const InterfaceConfig& old_intf : before.interfaces) {
    auto it = after_by_name.find(old_intf.name);
    if (it == after_by_name.end()) {
      return false;  // Interface renamed/removed: topology shape changed.
    }
    const InterfaceConfig& new_intf = *it->second;
    if (old_intf == new_intf) {
      continue;
    }
    // Compare with the scopable fields neutralized; any remaining difference
    // is address/cost/shutdown and therefore global.
    InterfaceConfig old_core = old_intf;
    InterfaceConfig new_core = new_intf;
    old_core.description.clear();
    new_core.description.clear();
    old_core.acl_in.reset();
    new_core.acl_in.reset();
    old_core.acl_out.reset();
    new_core.acl_out.reset();
    if (!(old_core == new_core)) {
      return false;
    }
    if (old_intf.acl_in != new_intf.acl_in &&
        !DiffAclBinding(old_intf.acl_in, new_intf.acl_in, before, after, dirty)) {
      return false;
    }
    if (old_intf.acl_out != new_intf.acl_out &&
        !DiffAclBinding(old_intf.acl_out, new_intf.acl_out, before, after, dirty)) {
      return false;
    }
  }
  return true;
}

// Static routes contribute independently (no match order): the symmetric
// difference of the two route lists is exactly the changed constructs, each
// destination-scoped by its prefix.
void DiffStaticRoutes(const std::vector<StaticRouteConfig>& before,
                      const std::vector<StaticRouteConfig>& after, DirtySet* dirty) {
  std::vector<StaticRouteConfig> remaining = after;
  for (const StaticRouteConfig& route : before) {
    auto it = std::find(remaining.begin(), remaining.end(), route);
    if (it != remaining.end()) {
      remaining.erase(it);
    } else {
      dirty->dst_prefixes.push_back(route.prefix);
    }
  }
  for (const StaticRouteConfig& route : remaining) {
    dirty->dst_prefixes.push_back(route.prefix);
  }
}

// ACL definition changes matter only where the list is applied. Returns
// false when the change cannot be scoped (a referenced list defined on only
// one side — the permit-all-when-undefined default flips).
bool DiffAccessLists(const Config& before, const Config& after, DirtySet* dirty) {
  std::set<std::string> names;
  for (const auto& [name, list] : before.access_lists) {
    names.insert(name);
  }
  for (const auto& [name, list] : after.access_lists) {
    names.insert(name);
  }
  for (const std::string& name : names) {
    const AccessList* old_list = before.FindAccessList(name);
    const AccessList* new_list = after.FindAccessList(name);
    if (old_list != nullptr && new_list != nullptr && *old_list == *new_list) {
      continue;
    }
    if (!AclReferenced(before, name) && !AclReferenced(after, name)) {
      continue;  // Unreferenced: no ETG reads it.
    }
    if (old_list == nullptr || new_list == nullptr) {
      return false;
    }
    DiffMatchLists(old_list->entries, new_list->entries,
                   [dirty](const AclEntry& entry) { MarkAclEntry(entry, dirty); });
  }
  return true;
}

// Prefix-list changes matter only where the list backs a distribute-list;
// route filters are destination-scoped, so the changed entries' prefixes are
// the dirt. `le 32` entries match more-specific prefixes too, which
// DstDirty's overlap test covers.
bool DiffPrefixLists(const Config& before, const Config& after, DirtySet* dirty) {
  std::set<std::string> names;
  for (const auto& [name, list] : before.prefix_lists) {
    names.insert(name);
  }
  for (const auto& [name, list] : after.prefix_lists) {
    names.insert(name);
  }
  for (const std::string& name : names) {
    const PrefixList* old_list = before.FindPrefixList(name);
    const PrefixList* new_list = after.FindPrefixList(name);
    if (old_list != nullptr && new_list != nullptr && *old_list == *new_list) {
      continue;
    }
    if (!PrefixListReferenced(before, name) && !PrefixListReferenced(after, name)) {
      continue;
    }
    if (old_list == nullptr || new_list == nullptr) {
      return false;  // Referenced list appeared/disappeared: default flips.
    }
    DiffMatchLists(old_list->entries, new_list->entries,
                   [dirty](const PrefixListEntry& entry) {
                     dirty->dst_prefixes.push_back(entry.prefix);
                   });
  }
  return true;
}

// One device's edit. Returns false when any part of it is global.
bool DiffDevice(const Config& before, const Config& after, DirtySet* dirty) {
  if (before.hostname != after.hostname) {
    return false;
  }
  // Routing process definitions (networks, passive interfaces,
  // redistribution, distribute-list applications) shape adjacencies and
  // advertisement; any edit there is aETG-level or flips filtering defaults.
  if (before.ospf_processes != after.ospf_processes || before.bgp != after.bgp ||
      before.rip != after.rip) {
    return false;
  }
  if (!DiffInterfaces(before, after, dirty)) {
    return false;
  }
  DiffStaticRoutes(before.static_routes, after.static_routes, dirty);
  if (!DiffAccessLists(before, after, dirty)) {
    return false;
  }
  return DiffPrefixLists(before, after, dirty);
}

}  // namespace

bool DirtySet::DstDirty(const Ipv4Prefix& dst) const {
  if (everything) {
    return true;
  }
  for (const Ipv4Prefix& prefix : dst_prefixes) {
    if (prefix.Overlaps(dst)) {
      return true;
    }
  }
  return false;
}

bool DirtySet::TcPairDirty(const Ipv4Prefix& src, const Ipv4Prefix& dst) const {
  if (everything) {
    return true;
  }
  for (const TcDirt& pattern : tc_dirt) {
    if (PrefixTouches(pattern.src, src) && PrefixTouches(pattern.dst, dst)) {
      return true;
    }
  }
  return false;
}

DirtySet ComputeDirtySet(const std::vector<Config>& before,
                         const NetworkAnnotations& before_annotations,
                         const std::vector<Config>& after,
                         const NetworkAnnotations& after_annotations) {
  DirtySet dirty;
  if (!(before_annotations.waypoint_links == after_annotations.waypoint_links)) {
    dirty.everything = true;  // Waypoints gate PC2 on every traffic class.
  }
  std::map<std::string, const Config*> after_by_host;
  for (const Config& config : after) {
    after_by_host.emplace(config.hostname, &config);
  }
  if (before.size() != after.size() || after_by_host.size() != after.size()) {
    dirty.everything = true;
  }
  for (const Config& old_config : before) {
    if (dirty.everything) {
      break;
    }
    auto it = after_by_host.find(old_config.hostname);
    if (it == after_by_host.end()) {
      dirty.everything = true;
      break;
    }
    const Config& new_config = *it->second;
    if (old_config == new_config) {
      continue;
    }
    ++dirty.devices_changed;
    if (!DiffDevice(old_config, new_config, &dirty)) {
      dirty.everything = true;
    }
  }
  if (dirty.everything) {
    // Scoped dirt is meaningless under global dirt; drop it so stats and
    // logs do not double-report.
    dirty.dst_prefixes.clear();
    dirty.tc_dirt.clear();
  }
  return dirty;
}

}  // namespace cpr::incremental
