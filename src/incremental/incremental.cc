#include "incremental/incremental.h"

#include <chrono>
#include <utility>

#include "config/diff.h"
#include "verify/checker.h"

namespace cpr::incremental {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

template <typename T>
void MoveAppend(std::vector<T>* into, std::vector<T>&& from) {
  into->insert(into->end(), std::make_move_iterator(from.begin()),
               std::make_move_iterator(from.end()));
}

void AppendEdits(RepairEdits* into, RepairEdits&& from) {
  MoveAppend(&into->adjacencies, std::move(from.adjacencies));
  MoveAppend(&into->redistributions, std::move(from.redistributions));
  MoveAppend(&into->filters, std::move(from.filters));
  MoveAppend(&into->static_routes, std::move(from.static_routes));
  MoveAppend(&into->acls, std::move(from.acls));
  MoveAppend(&into->costs, std::move(from.costs));
  MoveAppend(&into->waypoints, std::move(from.waypoints));
}

// Folds the fallback phase's repair metrics into the scoped phase's, keeping
// problem indices consistent with the appended problem_reports.
void MergeRepairStats(RepairStats* into, RepairStats&& from) {
  into->problems_formulated += from.problems_formulated;
  into->problems_solved += from.problems_solved;
  into->problems_failed += from.problems_failed;
  into->destinations_skipped += from.destinations_skipped;
  into->encode_seconds += from.encode_seconds;
  into->solve_seconds += from.solve_seconds;
  into->solve_wall_seconds += from.solve_wall_seconds;
  into->wall_seconds += from.wall_seconds;
  into->bool_vars += from.bool_vars;
  into->hard_constraints += from.hard_constraints;
  into->soft_constraints += from.soft_constraints;
  MoveAppend(&into->problem_reports, std::move(from.problem_reports));
  for (auto& [name, value] : from.solver_counter_totals) {
    bool found = false;
    for (auto& [existing, total] : into->solver_counter_totals) {
      if (existing == name) {
        total += value;
        found = true;
        break;
      }
    }
    if (!found) {
      into->solver_counter_totals.emplace_back(name, value);
    }
  }
}

}  // namespace

std::optional<Harc> PrepareHarc(const RepairSession& session, const Network& network,
                                const DirtySet& dirty, IncrementalStats* stats) {
  stats->devices_changed = dirty.devices_changed;
  stats->everything_dirty = dirty.everything;
  if (dirty.everything) {
    return std::nullopt;
  }
  const auto start = std::chrono::steady_clock::now();
  std::optional<Harc> clone = session.harc->CloneFor(network);
  if (!clone.has_value()) {
    return std::nullopt;
  }
  const std::vector<Subnet>& subnets = network.subnets();
  const int subnet_count = static_cast<int>(subnets.size());
  std::vector<bool> dst_dirty(subnets.size(), false);
  for (SubnetId d = 0; d < subnet_count; ++d) {
    if (dirty.DstDirty(subnets[static_cast<size_t>(d)].prefix)) {
      dst_dirty[static_cast<size_t>(d)] = true;
      clone->RebuildDestination(d);
      ++stats->dirty_destinations;
    }
  }
  for (SubnetId s = 0; s < subnet_count; ++s) {
    for (SubnetId d = 0; d < subnet_count; ++d) {
      if (s == d || dst_dirty[static_cast<size_t>(d)]) {
        continue;
      }
      if (dirty.TcPairDirty(subnets[static_cast<size_t>(s)].prefix,
                            subnets[static_cast<size_t>(d)].prefix)) {
        clone->RebuildTrafficClass(s, d);
        ++stats->dirty_traffic_classes;
      }
    }
  }
  stats->harc_cloned = true;
  stats->clone_seconds = SecondsSince(start);
  return clone;
}

Result<IncrementalOutcome> TryIncrementalRepair(RepairSession& session,
                                                const Network& network, const Harc& harc,
                                                const DirtySet& dirty,
                                                const std::vector<Policy>& policies,
                                                const RepairOptions& options,
                                                const IncrementalStats& seed) {
  IncrementalOutcome outcome;
  outcome.stats = seed;
  outcome.stats.attempted = true;
  const auto decline = [&outcome](std::string reason) {
    outcome.stats.skipped_reason = std::move(reason);
  };

  if (options.granularity != Granularity::kPerDst) {
    decline("incremental re-repair requires per-destination granularity");
    return outcome;
  }
  if (!(policies == session.policies)) {
    decline("policy set changed since the baseline session");
    return outcome;
  }
  if (dirty.everything) {
    decline("change is not destination-scopable (topology/process/cost edit)");
    return outcome;
  }
  // Group reuse relies on subnet ids meaning the same thing in both
  // snapshots, which is exactly what a successful HARC clone certifies.
  if (!outcome.stats.harc_cloned) {
    decline("snapshot is not clone-compatible with the baseline");
    return outcome;
  }

  // Classify the baseline groups: clean satisfied groups reuse their
  // verdict; everything else (dirty, or never satisfied) re-solves. The
  // final concrete re-verification below covers all policies regardless, so
  // a misclassified group surfaces as a residual violation, not as silence.
  const std::vector<Subnet>& subnets = network.subnets();
  const auto group_dirty = [&](const GroupRecord& group) {
    for (SubnetId d : group.dsts) {
      if (dirty.DstDirty(subnets[static_cast<size_t>(d)].prefix)) {
        return true;
      }
    }
    for (const auto& [s, d] : group.tcs) {
      if (dirty.TcPairDirty(subnets[static_cast<size_t>(s)].prefix,
                            subnets[static_cast<size_t>(d)].prefix)) {
        return true;
      }
    }
    return false;
  };
  std::vector<Policy> resolve;
  outcome.stats.groups_total = static_cast<int>(session.groups.size());
  for (const GroupRecord& group : session.groups) {
    if (group.satisfied && !group_dirty(group)) {
      ++outcome.stats.groups_reused;
      continue;
    }
    ++outcome.stats.groups_resolved;
    resolve.insert(resolve.end(), group.policies.begin(), group.policies.end());
  }

  IncrementalRepairResult result;
  if (!resolve.empty()) {
    // Hand exactly the dirty groups to the unchanged repair engine. Warm
    // per-problem solvers come from the session; merge propagation is
    // skipped because every un-encoded ETG already reflects the current
    // configurations (clean ones by the differ, dirty non-violated ones by
    // the clone's rebuild).
    RepairOptions scoped = options;
    scoped.warm_backends = &session.warm;
    scoped.propagate_merge = false;
    scoped.compress.mode = CompressMode::kOff;
    const auto solve_start = std::chrono::steady_clock::now();
    Result<RepairOutcome> solved = ComputeRepair(harc, resolve, scoped);
    outcome.stats.solve_seconds = SecondsSince(solve_start);
    if (!solved.ok()) {
      return solved.error();
    }
    for (const auto& [name, value] : solved->stats.solver_counter_totals) {
      if (name == "warm.hit") {
        outcome.stats.warm_hits += static_cast<int>(value);
      } else if (name == "warm.miss") {
        outcome.stats.warm_misses += static_cast<int>(value);
      }
    }
    if (!solved->HasRepair()) {
      outcome.stats.fell_back = true;
      decline(std::string("scoped solve failed (") + RepairStatusName(solved->status) +
              "); running the full pipeline");
      return outcome;
    }
    result.status = solved->status;
    result.edits = std::move(solved->edits);
    result.predicted_cost = solved->predicted_cost;
    result.stats = std::move(solved->stats);
    result.provenance = std::move(solved->provenance);
  } else {
    result.status = RepairStatus::kNoViolations;
  }

  Result<TranslationResult> translation = TranslateEdits(network, result.edits);
  if (!translation.ok()) {
    return translation.error();
  }
  result.lines_changed = translation->LinesChanged();
  result.diff_text = translation->DiffText(network);
  result.patched_configs = std::move(translation->patched_configs);
  result.patched_annotations = std::move(translation->annotations);
  result.change_log = std::move(translation->change_log);
  result.edit_traces = std::move(translation->edit_traces);

  // Concrete re-verification: rebuild the patched snapshot from scratch —
  // never from the clone — and check every policy. This is the soundness
  // anchor; the dirty set and the clone only decided how much work the
  // scoped solve absorbed.
  const auto verify_start = std::chrono::steady_clock::now();
  Result<Network> rebuilt =
      Network::Build(result.patched_configs, result.patched_annotations);
  if (!rebuilt.ok()) {
    return Error("incrementally patched configurations no longer form a valid network: " +
                 rebuilt.error().message());
  }
  result.rebuilt_network = std::make_unique<Network>(std::move(rebuilt).value());
  result.rebuilt_harc = std::make_unique<Harc>(Harc::Build(*result.rebuilt_network));
  std::vector<Policy> residual = FindViolations(*result.rebuilt_harc, policies);
  outcome.stats.verify_seconds = SecondsSince(verify_start);

  if (!residual.empty()) {
    // The dirty set under-marked (or the scoped solve fixed less than it
    // predicted): fall back to a full-scope repair on the concretely rebuilt
    // patched snapshot — compression's fallback pattern. The solve input
    // here was built from scratch, so nothing about this path depends on the
    // differ or the clone.
    outcome.stats.fell_back = true;
    RepairOptions fallback_options = options;
    fallback_options.compress.mode = CompressMode::kOff;
    fallback_options.warm_backends = &session.warm;
    Result<RepairOutcome> fallback =
        ComputeRepair(*result.rebuilt_harc, policies, fallback_options);
    if (!fallback.ok()) {
      return fallback.error();
    }
    if (!fallback->HasRepair()) {
      decline(std::string("fallback repair failed (") +
              RepairStatusName(fallback->status) + "); running the full pipeline");
      return outcome;
    }
    const int scoped_problems = static_cast<int>(result.stats.problem_reports.size());
    for (obs::ProvenanceChain& chain : fallback->provenance.chains) {
      chain.problem += scoped_problems;
    }
    for (obs::UnsatCoreReport& core : fallback->provenance.unsat_cores) {
      core.problem += scoped_problems;
    }
    MoveAppend(&result.provenance.chains, std::move(fallback->provenance.chains));
    MoveAppend(&result.provenance.orphan_edits,
               std::move(fallback->provenance.orphan_edits));
    MoveAppend(&result.provenance.unsat_cores,
               std::move(fallback->provenance.unsat_cores));
    MergeRepairStats(&result.stats, std::move(fallback->stats));
    result.predicted_cost += fallback->predicted_cost;

    Result<TranslationResult> second =
        TranslateEdits(*result.rebuilt_network, fallback->edits);
    if (!second.ok()) {
      return second.error();
    }
    AppendEdits(&result.edits, std::move(fallback->edits));
    result.diff_text += second->DiffText(*result.rebuilt_network);
    MoveAppend(&result.change_log, std::move(second->change_log));
    MoveAppend(&result.edit_traces, std::move(second->edit_traces));
    result.patched_configs = std::move(second->patched_configs);
    result.patched_annotations = std::move(second->annotations);
    result.lines_changed = TotalLinesChanged(network.configs(), result.patched_configs);

    Result<Network> final_network =
        Network::Build(result.patched_configs, result.patched_annotations);
    if (!final_network.ok()) {
      return Error("fallback-patched configurations no longer form a valid network: " +
                   final_network.error().message());
    }
    result.rebuilt_network = std::make_unique<Network>(std::move(final_network).value());
    result.rebuilt_harc = std::make_unique<Harc>(Harc::Build(*result.rebuilt_network));
    // Any violation still left is the ordinary pipeline's situation too
    // (e.g. kPartial): CloseLoop re-verifies on this pair and reports it.
    result.status = fallback->status;
  }

  outcome.stats.applied = true;
  outcome.result = std::move(result);
  return outcome;
}

}  // namespace cpr::incremental
