// Config differ for incremental re-repair: classifies the edit between two
// configuration snapshots into a dirty-construct set (DESIGN.md §12).
//
// The HARC's layering makes change scoping precise: aETG-level constructs
// (interface addresses/shutdown/costs, process definitions, adjacencies,
// redistribution) affect every ETG, so any such change marks everything
// dirty; static routes and route filters are destination-scoped, dirtying
// only destinations whose prefix the construct can match; ACLs are
// traffic-class-scoped, dirtying only (src, dst) pairs their entries can
// match. Unreferenced ACLs/prefix lists and interface descriptions dirty
// nothing.
//
// The classification is deliberately conservative (over-marking is always
// safe) and, crucially, is never load-bearing for soundness: the incremental
// engine re-verifies its final result concretely and falls back to a full
// repair on any residual violation, so a wrong dirty set costs time, not
// correctness.

#ifndef CPR_SRC_INCREMENTAL_DIRTY_H_
#define CPR_SRC_INCREMENTAL_DIRTY_H_

#include <optional>
#include <vector>

#include "config/ast.h"
#include "topo/network.h"

namespace cpr::incremental {

// A traffic-class dirt pattern; nullopt endpoints are wildcards (an ACL
// entry's `any`).
struct TcDirt {
  std::optional<Ipv4Prefix> src;
  std::optional<Ipv4Prefix> dst;
};

struct DirtySet {
  // The change affects aETG-level behavior (or the device/topology shape
  // itself): no destination scoping is possible.
  bool everything = false;
  int devices_changed = 0;
  // Destination-scoped dirt: a destination subnet is dirty when its prefix
  // overlaps any of these.
  std::vector<Ipv4Prefix> dst_prefixes;
  // Traffic-class-scoped dirt (ACL changes).
  std::vector<TcDirt> tc_dirt;

  // Whether the destination's dETG (and every tcETG toward it) may have
  // changed.
  bool DstDirty(const Ipv4Prefix& dst) const;
  // Whether the (src, dst) tcETG may have changed via an ACL edit alone
  // (excludes DstDirty — callers rebuild dirty destinations wholesale).
  bool TcPairDirty(const Ipv4Prefix& src, const Ipv4Prefix& dst) const;
  // Whether the traffic class (src, dst) may behave differently at all.
  bool TcDirty(const Ipv4Prefix& src, const Ipv4Prefix& dst) const {
    return everything || DstDirty(dst) || TcPairDirty(src, dst);
  }

  bool Clean() const {
    return !everything && dst_prefixes.empty() && tc_dirt.empty();
  }
};

// Diffs two snapshots (device configurations matched by hostname, plus the
// side-channel annotations). A changed device set, changed annotations, or
// any aETG-level edit yields `everything`.
DirtySet ComputeDirtySet(const std::vector<Config>& before,
                         const NetworkAnnotations& before_annotations,
                         const std::vector<Config>& after,
                         const NetworkAnnotations& after_annotations);

}  // namespace cpr::incremental

#endif  // CPR_SRC_INCREMENTAL_DIRTY_H_
