#include "compress/lift.h"

#include <algorithm>

namespace cpr::compress {

namespace {

class Lifter {
 public:
  Lifter(const Quotient& quotient, std::set<std::string>* emitted)
      : q_(quotient), emitted_(emitted) {}

  LiftedEdits Run(const RepairEdits& quotient_edits) {
    for (const AdjacencyEdit& edit : quotient_edits.adjacencies) {
      BeginAbstract(ConstructKey(edit));
      LiftAdjacency(edit);
    }
    for (const RedistributionEdit& edit : quotient_edits.redistributions) {
      BeginAbstract(ConstructKey(edit));
      LiftRedistribution(edit);
    }
    for (const FilterEdit& edit : quotient_edits.filters) {
      BeginAbstract(ConstructKey(edit));
      LiftFilter(edit);
    }
    for (const StaticRouteEdit& edit : quotient_edits.static_routes) {
      BeginAbstract(ConstructKey(edit));
      LiftStaticRoute(edit);
    }
    for (const AclEdit& edit : quotient_edits.acls) {
      BeginAbstract(ConstructKey(edit));
      LiftAcl(edit);
    }
    for (const CostEdit& edit : quotient_edits.costs) {
      BeginAbstract(ConstructKey(edit));
      LiftCost(edit);
    }
    for (const WaypointEdit& edit : quotient_edits.waypoints) {
      BeginAbstract(ConstructKey(edit));
      LiftWaypoint(edit);
    }
    return std::move(out_);
  }

 private:
  void BeginAbstract(const std::string& key) {
    ++out_.abstract_edits;
    current_ = &out_.fanout[key];
  }

  template <typename Edit>
  void Emit(const Edit& edit, std::vector<Edit>& into) {
    std::string key = ConstructKey(edit);
    current_->emplace_back(key, Describe(edit));
    if (emitted_->insert(std::move(key)).second) {
      into.push_back(edit);
      ++out_.concrete_edits;
    }
  }

  int BlockOf(DeviceId quotient_device) const {
    return q_.block_of[static_cast<size_t>(
        q_.rep_of[static_cast<size_t>(quotient_device)])];
  }
  const std::vector<LinkId>& Links(LinkId quotient_link) const {
    return q_.link_members[static_cast<size_t>(quotient_link)];
  }
  const std::vector<SubnetId>& Subnets(SubnetId quotient_subnet) const {
    return q_.subnet_members[static_cast<size_t>(quotient_subnet)];
  }
  const std::map<DeviceId, ProcessId>& Processes(ProcessId quotient_process) const {
    return q_.process_members[static_cast<size_t>(quotient_process)];
  }
  // The endpoint of a concrete link lying in `block` (-1 when neither does).
  DeviceId EndpointInBlock(LinkId link, int block) const {
    const TopoLink& topo = q_.concrete->links()[static_cast<size_t>(link)];
    if (q_.block_of[static_cast<size_t>(topo.device_a)] == block) {
      return topo.device_a;
    }
    if (q_.block_of[static_cast<size_t>(topo.device_b)] == block) {
      return topo.device_b;
    }
    return -1;
  }

  void LiftAdjacency(const AdjacencyEdit& edit) {
    const Network& qnet = *q_.network;
    const DeviceId side_a =
        qnet.processes()[static_cast<size_t>(edit.process_a)].device;
    const DeviceId side_b =
        qnet.processes()[static_cast<size_t>(edit.process_b)].device;
    const int block_a = BlockOf(side_a);
    const int block_b = BlockOf(side_b);
    for (LinkId link : Links(edit.link)) {
      const DeviceId device_a = EndpointInBlock(link, block_a);
      const DeviceId device_b = EndpointInBlock(link, block_b);
      if (device_a < 0 || device_b < 0) {
        continue;
      }
      auto it_a = Processes(edit.process_a).find(device_a);
      auto it_b = Processes(edit.process_b).find(device_b);
      if (it_a == Processes(edit.process_a).end() ||
          it_b == Processes(edit.process_b).end()) {
        continue;
      }
      AdjacencyEdit lifted = edit;
      lifted.link = link;
      lifted.process_a = std::min(it_a->second, it_b->second);
      lifted.process_b = std::max(it_a->second, it_b->second);
      Emit(lifted, out_.edits.adjacencies);
    }
  }

  void LiftRedistribution(const RedistributionEdit& edit) {
    // Both processes live on one device; fan over its block.
    for (const auto& [device, redistributing] : Processes(edit.redistributing)) {
      auto source = Processes(edit.source).find(device);
      if (source == Processes(edit.source).end()) {
        continue;
      }
      RedistributionEdit lifted = edit;
      lifted.redistributing = redistributing;
      lifted.source = source->second;
      Emit(lifted, out_.edits.redistributions);
    }
  }

  void LiftFilter(const FilterEdit& edit) {
    for (const auto& [device, process] : Processes(edit.process)) {
      (void)device;
      for (SubnetId dst : Subnets(edit.dst)) {
        FilterEdit lifted = edit;
        lifted.process = process;
        lifted.dst = dst;
        Emit(lifted, out_.edits.filters);
      }
    }
  }

  void LiftStaticRoute(const StaticRouteEdit& edit) {
    for (DeviceId device : q_.device_members[static_cast<size_t>(edit.device)]) {
      for (LinkId link : Links(edit.link)) {
        const TopoLink& topo = q_.concrete->links()[static_cast<size_t>(link)];
        if (topo.device_a != device && topo.device_b != device) {
          continue;
        }
        for (SubnetId dst : Subnets(edit.dst)) {
          StaticRouteEdit lifted = edit;
          lifted.device = device;
          lifted.link = link;
          lifted.dst = dst;
          Emit(lifted, out_.edits.static_routes);
        }
      }
    }
  }

  void LiftAcl(const AclEdit& edit) {
    if (edit.where == AclEdit::Where::kLink) {
      const int egress_block = BlockOf(edit.egress_device);
      for (LinkId link : Links(edit.link)) {
        const DeviceId egress = EndpointInBlock(link, egress_block);
        if (egress < 0) {
          continue;
        }
        for (SubnetId src : Subnets(edit.src)) {
          for (SubnetId dst : Subnets(edit.dst)) {
            AclEdit lifted = edit;
            lifted.link = link;
            lifted.egress_device = egress;
            lifted.src = src;
            lifted.dst = dst;
            Emit(lifted, out_.edits.acls);
          }
        }
      }
      return;
    }
    // Host-facing application: the endpoint subnet tracks whichever side of
    // the traffic class it equals (the encoder always aligns them).
    for (SubnetId src : Subnets(edit.src)) {
      for (SubnetId dst : Subnets(edit.dst)) {
        AclEdit lifted = edit;
        lifted.src = src;
        lifted.dst = dst;
        if (edit.endpoint_subnet == edit.src) {
          lifted.endpoint_subnet = src;
        } else if (edit.endpoint_subnet == edit.dst) {
          lifted.endpoint_subnet = dst;
        } else {
          continue;  // Unaligned endpoint: leave to the concrete fallback.
        }
        Emit(lifted, out_.edits.acls);
      }
    }
  }

  void LiftCost(const CostEdit& edit) {
    const int egress_block = BlockOf(edit.egress_device);
    for (LinkId link : Links(edit.link)) {
      const DeviceId egress = EndpointInBlock(link, egress_block);
      if (egress < 0) {
        continue;
      }
      CostEdit lifted = edit;
      lifted.link = link;
      lifted.egress_device = egress;
      Emit(lifted, out_.edits.costs);
    }
  }

  void LiftWaypoint(const WaypointEdit& edit) {
    for (LinkId link : Links(edit.link)) {
      WaypointEdit lifted = edit;
      lifted.link = link;
      Emit(lifted, out_.edits.waypoints);
    }
  }

  const Quotient& q_;
  std::set<std::string>* emitted_;
  LiftedEdits out_;
  std::vector<std::pair<std::string, std::string>>* current_ = nullptr;
};

}  // namespace

LiftedEdits LiftEdits(const Quotient& quotient, const RepairEdits& quotient_edits,
                      std::set<std::string>* emitted) {
  return Lifter(quotient, emitted).Run(quotient_edits);
}

}  // namespace cpr::compress
