// Lifting quotient repairs back to the concrete network (stage 3).
//
// Every quotient edit names quotient-space ids; lifting fans it out over the
// fan-out classes the quotient builder recorded: devices and processes fan
// over their block, links over the label-matched links between the block
// pair, subnets over the same-interface subnets of the block. One abstract
// edit therefore becomes N concrete edits — the whole point of the
// abstraction — and the fan-out map lets provenance duplicate each abstract
// chain into one chain per concrete construct, so `cpr explain` only ever
// shows concrete ids.
//
// Lifting is heuristic, not certified: the caller re-verifies the lifted
// patch on the concrete network and re-repairs anything still violated.

#ifndef CPR_SRC_COMPRESS_LIFT_H_
#define CPR_SRC_COMPRESS_LIFT_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "compress/quotient.h"
#include "repair/edits.h"

namespace cpr::compress {

struct LiftedEdits {
  // Concrete edits, deduplicated by construct key (within this lift and
  // against `emitted`, the caller's cross-group key set).
  RepairEdits edits;
  // Quotient construct key -> lifted (concrete key, concrete description)
  // pairs, for provenance fan-out.
  std::map<std::string, std::vector<std::pair<std::string, std::string>>> fanout;
  int abstract_edits = 0;
  int concrete_edits = 0;
};

LiftedEdits LiftEdits(const Quotient& quotient, const RepairEdits& quotient_edits,
                      std::set<std::string>* emitted);

}  // namespace cpr::compress

#endif  // CPR_SRC_COMPRESS_LIFT_H_
