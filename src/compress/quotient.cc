#include "compress/quotient.h"

#include <algorithm>
#include <deque>
#include <set>
#include <string>
#include <utility>

namespace cpr::compress {

namespace {

// The lowest selected device of each block: the representative whose host
// subnets stand in for the whole block when mapping policy endpoints.
std::vector<DeviceId> PrimaryReps(const Partition& partition,
                                  const std::set<DeviceId>& reps) {
  std::vector<DeviceId> primary(partition.members.size(), -1);
  for (DeviceId rep : reps) {
    DeviceId& slot = primary[static_cast<size_t>(
        partition.block_of[static_cast<size_t>(rep)])];
    if (slot < 0 || rep < slot) {
      slot = rep;
    }
  }
  return primary;
}

}  // namespace

Result<Quotient> BuildQuotient(const Network& concrete, const Partition& partition) {
  const int n = static_cast<int>(concrete.devices().size());

  // Intra-block links break the quotient invariant (a representative would
  // need itself as a neighbor); such partitions do not quotient.
  for (const TopoLink& link : concrete.links()) {
    if (partition.SameBlock(link.device_a, link.device_b)) {
      return Error("link inside block: " +
                   concrete.devices()[static_cast<size_t>(link.device_a)].name + " - " +
                   concrete.devices()[static_cast<size_t>(link.device_b)].name);
    }
  }

  std::vector<std::vector<LinkId>> incident(static_cast<size_t>(n));
  for (LinkId l = 0; l < static_cast<int>(concrete.links().size()); ++l) {
    const TopoLink& link = concrete.links()[static_cast<size_t>(l)];
    incident[static_cast<size_t>(link.device_a)].push_back(l);
    incident[static_cast<size_t>(link.device_b)].push_back(l);
  }

  // --- Representative selection: one per block, then close under "every
  // representative has a selected neighbor in each adjacent block".
  std::set<DeviceId> reps;
  std::deque<DeviceId> worklist;
  for (const std::vector<DeviceId>& block : partition.members) {
    reps.insert(block.front());
    worklist.push_back(block.front());
  }
  while (!worklist.empty()) {
    const DeviceId rep = worklist.front();
    worklist.pop_front();
    // Neighbors grouped by block; select the lowest neighbor of any block
    // with no selected neighbor yet.
    std::map<int, std::vector<DeviceId>> by_block;
    for (LinkId l : incident[static_cast<size_t>(rep)]) {
      const DeviceId peer = concrete.LinkPeer(l, rep);
      by_block[partition.block_of[static_cast<size_t>(peer)]].push_back(peer);
    }
    for (auto& [block, peers] : by_block) {
      const bool covered =
          std::any_of(peers.begin(), peers.end(),
                      [&](DeviceId peer) { return reps.count(peer) > 0; });
      if (!covered) {
        const DeviceId added = *std::min_element(peers.begin(), peers.end());
        reps.insert(added);
        worklist.push_back(added);
        // The new representative's own neighborhoods need covering too, and
        // existing representatives adjacent to `block` are still covered —
        // closure only ever adds.
      }
    }
  }

  // --- Pruned representative configurations (concrete addresses kept).
  std::map<std::pair<DeviceId, std::string>, LinkId> link_at;
  for (LinkId l = 0; l < static_cast<int>(concrete.links().size()); ++l) {
    const TopoLink& link = concrete.links()[static_cast<size_t>(l)];
    link_at[{link.device_a, link.interface_a}] = l;
    link_at[{link.device_b, link.interface_b}] = l;
  }
  std::vector<Config> configs;
  NetworkAnnotations annotations;
  for (DeviceId rep : reps) {
    Config config = concrete.config_for(rep);
    std::set<std::string> dropped;
    std::vector<InterfaceConfig> kept;
    for (InterfaceConfig& interface : config.interfaces) {
      auto it = link_at.find({rep, interface.name});
      if (it != link_at.end() &&
          reps.count(concrete.LinkPeer(it->second, rep)) == 0) {
        dropped.insert(interface.name);
      } else {
        kept.push_back(std::move(interface));
      }
    }
    config.interfaces = std::move(kept);
    auto reachable = [&](Ipv4Address ip) {
      return std::any_of(config.interfaces.begin(), config.interfaces.end(),
                         [&](const InterfaceConfig& interface) {
                           return interface.address.has_value() &&
                                  interface.address->Prefix().Contains(ip);
                         });
    };
    for (OspfConfig& ospf : config.ospf_processes) {
      for (const std::string& name : dropped) {
        ospf.passive_interfaces.erase(name);
      }
    }
    if (config.bgp.has_value()) {
      auto& neighbors = config.bgp->neighbors;
      neighbors.erase(std::remove_if(neighbors.begin(), neighbors.end(),
                                     [&](const BgpNeighbor& neighbor) {
                                       return !reachable(neighbor.ip);
                                     }),
                      neighbors.end());
    }
    auto& statics = config.static_routes;
    statics.erase(std::remove_if(statics.begin(), statics.end(),
                                 [&](const StaticRouteConfig& route) {
                                   return !reachable(route.next_hop);
                                 }),
                  statics.end());
    configs.push_back(std::move(config));
  }
  for (const TopoLink& link : concrete.links()) {
    if (link.waypoint && reps.count(link.device_a) > 0 && reps.count(link.device_b) > 0) {
      annotations.waypoint_links.insert(
          {concrete.devices()[static_cast<size_t>(link.device_a)].name,
           concrete.devices()[static_cast<size_t>(link.device_b)].name});
    }
  }

  Result<Network> network = Network::Build(std::move(configs), std::move(annotations));
  if (!network.ok()) {
    return Error("representative subnetwork: " + network.error().message());
  }

  Quotient quotient;
  quotient.concrete = &concrete;
  quotient.network = std::make_unique<Network>(std::move(network).value());
  quotient.block_of = partition.block_of;
  quotient.concrete_devices = n;
  const Network& qnet = *quotient.network;

  // --- Device map.
  quotient.rep_of.resize(qnet.devices().size());
  quotient.device_members.resize(qnet.devices().size());
  for (DeviceId qd = 0; qd < static_cast<int>(qnet.devices().size()); ++qd) {
    auto rep = concrete.FindDevice(qnet.devices()[static_cast<size_t>(qd)].name);
    if (!rep.has_value()) {
      return Error("representative vanished from its own subnetwork");
    }
    quotient.rep_of[static_cast<size_t>(qd)] = *rep;
    quotient.device_members[static_cast<size_t>(qd)] =
        partition.members[static_cast<size_t>(
            partition.block_of[static_cast<size_t>(*rep)])];
  }

  // --- Process map: same (kind, protocol id, position) on each member.
  auto find_process = [&](DeviceId device, const RoutingProcess& role)
      -> std::optional<ProcessId> {
    for (ProcessId p : concrete.devices()[static_cast<size_t>(device)].processes) {
      const RoutingProcess& candidate = concrete.processes()[static_cast<size_t>(p)];
      if (candidate.kind == role.kind && candidate.protocol_id == role.protocol_id &&
          candidate.index_on_device == role.index_on_device) {
        return p;
      }
    }
    return std::nullopt;
  };
  quotient.process_members.resize(qnet.processes().size());
  for (ProcessId qp = 0; qp < static_cast<int>(qnet.processes().size()); ++qp) {
    const RoutingProcess& role = qnet.processes()[static_cast<size_t>(qp)];
    for (DeviceId member : quotient.device_members[static_cast<size_t>(role.device)]) {
      auto process = find_process(member, role);
      if (!process.has_value()) {
        return Error("block member " +
                     concrete.devices()[static_cast<size_t>(member)].name +
                     " lacks a same-role process");
      }
      quotient.process_members[static_cast<size_t>(qp)][member] = *process;
    }
  }

  // --- Subnet map: same interface across the block. Policy endpoints map
  // through the block's primary representative.
  std::map<std::pair<DeviceId, std::string>, SubnetId> subnet_at;
  for (SubnetId s = 0; s < static_cast<int>(concrete.subnets().size()); ++s) {
    const Subnet& subnet = concrete.subnets()[static_cast<size_t>(s)];
    subnet_at[{subnet.device, subnet.interface}] = s;
  }
  quotient.subnet_members.resize(qnet.subnets().size());
  for (SubnetId qs = 0; qs < static_cast<int>(qnet.subnets().size()); ++qs) {
    const Subnet& subnet = qnet.subnets()[static_cast<size_t>(qs)];
    for (DeviceId member :
         quotient.device_members[static_cast<size_t>(subnet.device)]) {
      auto it = subnet_at.find({member, subnet.interface});
      if (it == subnet_at.end()) {
        return Error("block member " +
                     concrete.devices()[static_cast<size_t>(member)].name +
                     " lacks subnet interface " + subnet.interface);
      }
      quotient.subnet_members[static_cast<size_t>(qs)].push_back(it->second);
    }
  }
  const std::vector<DeviceId> primary = PrimaryReps(partition, reps);
  std::map<std::pair<DeviceId, std::string>, SubnetId> quotient_subnet_at;
  for (SubnetId qs = 0; qs < static_cast<int>(qnet.subnets().size()); ++qs) {
    const Subnet& subnet = qnet.subnets()[static_cast<size_t>(qs)];
    quotient_subnet_at[{quotient.rep_of[static_cast<size_t>(subnet.device)],
                        subnet.interface}] = qs;
  }
  quotient.quotient_subnet_of.assign(concrete.subnets().size(), -1);
  for (SubnetId s = 0; s < static_cast<int>(concrete.subnets().size()); ++s) {
    const Subnet& subnet = concrete.subnets()[static_cast<size_t>(s)];
    const DeviceId rep = primary[static_cast<size_t>(
        partition.block_of[static_cast<size_t>(subnet.device)])];
    auto it = quotient_subnet_at.find({rep, subnet.interface});
    if (it == quotient_subnet_at.end()) {
      return Error("subnet " + subnet.prefix.ToString() +
                   " has no representative counterpart");
    }
    quotient.quotient_subnet_of[static_cast<size_t>(s)] = it->second;
  }

  // --- Link map: between the same block pair with the same label.
  auto link_cost = [](const Network& net, LinkId link, DeviceId device) {
    const auto [mine, theirs] = net.LinkInterfaces(link, device);
    (void)theirs;
    const InterfaceConfig* interface = net.config_for(device).FindInterface(mine);
    return interface != nullptr ? interface->ospf_cost : 1;
  };
  quotient.link_members.resize(qnet.links().size());
  for (LinkId ql = 0; ql < static_cast<int>(qnet.links().size()); ++ql) {
    const TopoLink& qlink = qnet.links()[static_cast<size_t>(ql)];
    const DeviceId rep_a = quotient.rep_of[static_cast<size_t>(qlink.device_a)];
    const DeviceId rep_b = quotient.rep_of[static_cast<size_t>(qlink.device_b)];
    const int block_a = partition.block_of[static_cast<size_t>(rep_a)];
    const int block_b = partition.block_of[static_cast<size_t>(rep_b)];
    const int cost_a = link_cost(qnet, ql, qlink.device_a);
    const int cost_b = link_cost(qnet, ql, qlink.device_b);
    for (LinkId l = 0; l < static_cast<int>(concrete.links().size()); ++l) {
      const TopoLink& link = concrete.links()[static_cast<size_t>(l)];
      if (link.waypoint != qlink.waypoint) {
        continue;
      }
      const int la = partition.block_of[static_cast<size_t>(link.device_a)];
      const int lb = partition.block_of[static_cast<size_t>(link.device_b)];
      if (la == block_a && lb == block_b) {
        if (link_cost(concrete, l, link.device_a) == cost_a &&
            link_cost(concrete, l, link.device_b) == cost_b) {
          quotient.link_members[static_cast<size_t>(ql)].push_back(l);
        }
      } else if (la == block_b && lb == block_a) {
        if (link_cost(concrete, l, link.device_a) == cost_b &&
            link_cost(concrete, l, link.device_b) == cost_a) {
          quotient.link_members[static_cast<size_t>(ql)].push_back(l);
        }
      }
    }
  }

  quotient.harc = std::make_unique<Harc>(Harc::Build(qnet));
  return quotient;
}

std::optional<Policy> MapPolicy(const Quotient& quotient, const Policy& policy) {
  auto map_subnet = [&](SubnetId subnet) -> SubnetId {
    return quotient.quotient_subnet_of[static_cast<size_t>(subnet)];
  };
  switch (policy.pc) {
    case PolicyClass::kAlwaysBlocked:
      return Policy::AlwaysBlocked(map_subnet(policy.src), map_subnet(policy.dst));
    case PolicyClass::kAlwaysWaypoint:
      return Policy::AlwaysWaypoint(map_subnet(policy.src), map_subnet(policy.dst));
    case PolicyClass::kReachability:
      // Link multiplicity is deliberately lost by the quotient: require a
      // single path here and let the concrete re-verify enforce the real k.
      return Policy::Reachability(map_subnet(policy.src), map_subnet(policy.dst),
                                  std::min(policy.k, 1));
    case PolicyClass::kPrimaryPath:
    case PolicyClass::kIsolation:
      // Device-level paths and cross-class link sharing are exactly what the
      // quotient abstracts away.
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace cpr::compress
