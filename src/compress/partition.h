// Behavioral-symmetry partition of routers (compression pre-pass, stage 1).
//
// Two routers may share a block only when they are behaviorally
// interchangeable: identical configurations up to identity (hostname,
// interface addresses, BGP-neighbor and static-route next-hop addresses are
// abstracted away; filtering content — ACL entries, prefix lists, `network`
// statements, static-route destinations — stays concrete), the same multiset
// of link roles toward their neighbors' blocks (peer block, OSPF cost pair,
// waypoint flag), and the same pinned host subnets.
//
// The partition is computed by iterative role refinement (one-dimensional
// Weisfeiler-Leman colour refinement over the link graph), seeded by the
// config differ: two routers start in the same block exactly when their
// abstracted canonical texts diff to zero lines. Pins let a caller
// distinguish policy endpoints — a pinned subnet's host router gets a colour
// of its own, which is how the per-destination quotients keep a policy's SRC
// and DST expressible (see quotient.h).

#ifndef CPR_SRC_COMPRESS_PARTITION_H_
#define CPR_SRC_COMPRESS_PARTITION_H_

#include <map>
#include <string>
#include <vector>

#include "config/ast.h"
#include "topo/network.h"

namespace cpr::compress {

// Distinguished roles for policy-endpoint host subnets. Subnets absent from
// the map are unpinned ("plain") and may merge freely.
struct SubnetPins {
  std::map<SubnetId, std::string> tokens;

  // Stable cache key over the pinned set.
  std::string Key() const;
};

struct Partition {
  // Device -> block index (dense, 0-based).
  std::vector<int> block_of;
  // Block -> member devices, sorted ascending; blocks ordered by their
  // lowest member.
  std::vector<std::vector<DeviceId>> members;
  // Refinement rounds until fixpoint (diagnostics).
  int rounds = 0;

  int block_count() const { return static_cast<int>(members.size()); }
  int device_count() const { return static_cast<int>(block_of.size()); }
  double Ratio() const {
    return members.empty() ? 1.0
                           : static_cast<double>(block_of.size()) /
                                 static_cast<double>(members.size());
  }
  bool SameBlock(DeviceId a, DeviceId b) const {
    return block_of[static_cast<size_t>(a)] == block_of[static_cast<size_t>(b)];
  }
};

// The identity-abstracted canonical text used for differ seeding: hostname
// dropped, interface / BGP-neighbor / static-next-hop addresses zeroed,
// everything else verbatim. Exposed for tests.
std::string RoleSignature(const Config& config);

Partition ComputePartition(const Network& network, const SubnetPins& pins = {});

}  // namespace cpr::compress

#endif  // CPR_SRC_COMPRESS_PARTITION_H_
