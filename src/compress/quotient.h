// Quotient network construction (compression pre-pass, stage 2).
//
// Given a behavioral partition, the quotient is the *representative
// subnetwork*: a set of concrete routers — at least one per block, grown
// until every representative has a representative neighbor in each block its
// block is adjacent to — with their configurations pruned down to the
// interfaces whose link peers were also selected. Representative configs
// keep their concrete addresses, so Network::Build reconstructs the selected
// links exactly; nothing is rewritten. The repair engine then runs on the
// small network unchanged, and every id space (device, process, link,
// subnet) carries a fan-out map back to the concrete network for the edit
// lifter (lift.h).
//
// Policies map per-endpoint: a concrete subnet maps to the same-interface
// subnet of its block's representative. PC3's k is clamped to 1 on the
// quotient (link multiplicity is deliberately lost by the abstraction; the
// concrete re-verify, not the quotient, enforces the real k). PC4 and PC5 do
// not map — their groups always repair uncompressed.

#ifndef CPR_SRC_COMPRESS_QUOTIENT_H_
#define CPR_SRC_COMPRESS_QUOTIENT_H_

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "arc/harc.h"
#include "compress/partition.h"
#include "netbase/result.h"
#include "topo/network.h"
#include "verify/policy.h"

namespace cpr::compress {

struct Quotient {
  // The concrete network this quotient abstracts (not owned, must outlive).
  const Network* concrete = nullptr;
  // The representative subnetwork and its HARC (behind stable pointers: the
  // HARC's universe refers to the network, and Quotient must stay movable).
  std::unique_ptr<Network> network;
  std::unique_ptr<Harc> harc;

  // Quotient device -> the concrete representative it is.
  std::vector<DeviceId> rep_of;
  // Concrete device -> its partition block.
  std::vector<int> block_of;
  // Fan-out maps, by quotient id. Fan-out is by *block*, not representative:
  // an edit on any representative applies to every member of its block.
  std::vector<std::vector<DeviceId>> device_members;
  // Quotient process -> concrete same-role process per block member.
  std::vector<std::map<DeviceId, ProcessId>> process_members;
  // Quotient subnet -> same-interface subnets across the block.
  std::vector<std::vector<SubnetId>> subnet_members;
  // Quotient link -> concrete links between the two blocks with the same
  // (cost pair, waypoint) label.
  std::vector<std::vector<LinkId>> link_members;
  // Concrete subnet -> quotient subnet (total: every block has a rep).
  std::vector<SubnetId> quotient_subnet_of;

  int concrete_devices = 0;
  int quotient_devices() const {
    return network ? static_cast<int>(network->devices().size()) : 0;
  }
  double Ratio() const {
    return quotient_devices() > 0
               ? static_cast<double>(concrete_devices) / quotient_devices()
               : 1.0;
  }
};

// Fails when the partition cannot quotient this topology (a link inside a
// block, a representative config that no longer parses into a network, or a
// block member missing a same-role process); callers fall back to
// uncompressed repair.
Result<Quotient> BuildQuotient(const Network& concrete, const Partition& partition);

// Maps a concrete policy onto the quotient; nullopt for PC4/PC5.
std::optional<Policy> MapPolicy(const Quotient& quotient, const Policy& policy);

}  // namespace cpr::compress

#endif  // CPR_SRC_COMPRESS_QUOTIENT_H_
