// Symmetry-quotient compression pre-pass orchestration (DESIGN.md §11).
//
// The pre-pass mirrors the repair engine's per-destination problem
// partition. For each destination group it pins the group's policy-endpoint
// subnets, computes a pinned behavioral partition (partition.h), builds the
// representative quotient network (quotient.h), solves the group's policies
// on the small instance with the unchanged repair engine, and lifts the
// abstract edits back to every concrete router (lift.h). The lifted patch is
// then translated and re-verified on the *concrete* network: every policy
// still violated — whether its group was never compressible (PC4/PC5, poor
// ratio, quotient failure) or its lifted patch fell short — is re-repaired
// by an ordinary uncompressed ComputeRepair on the patched network.
// Correctness therefore never depends on the abstraction; compression only
// decides how much of the work the small instance absorbs.

#ifndef CPR_SRC_COMPRESS_COMPRESS_H_
#define CPR_SRC_COMPRESS_COMPRESS_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "compress/partition.h"
#include "compress/quotient.h"
#include "netbase/result.h"
#include "obs/provenance.h"
#include "repair/repair.h"
#include "translate/translator.h"
#include "verify/policy.h"

namespace cpr::compress {

// What the pre-pass did, for the "compression" stats-json section and the
// compression.* counters. quotient_ratio is 1.0 whenever compression did not
// apply (the clean-fallback signature check.sh asserts on asymmetric input).
struct CompressionStats {
  bool attempted = false;
  bool applied = false;
  std::string skipped_reason;  // Why the pre-pass declined (when !applied).
  int routers = 0;
  int base_blocks = 0;
  // Concrete routers divided by the mean quotient size over compressed
  // groups; 1.0 when nothing compressed.
  double quotient_ratio = 1.0;
  int groups_total = 0;
  int groups_compressed = 0;
  int groups_fallback = 0;
  int abstract_edits = 0;
  int lifted_edits = 0;
  // Policies of successfully compressed groups still violated after the
  // lifted patch was applied (they joined the uncompressed fallback).
  int lift_verify_failures = 0;
  // All policies the concrete fallback repair had to handle.
  int fallback_policies = 0;
  int cache_hits = 0;
  int cache_misses = 0;
  double partition_seconds = 0;
  double quotient_seconds = 0;
  double solve_seconds = 0;
  double lift_seconds = 0;
};

// A complete repair produced by the pre-pass: patched configurations with
// merged metrics/provenance across the quotient solves and the concrete
// fallback. The core pipeline picks up from here exactly as it would after
// its own translate step.
struct CompressedRepairResult {
  RepairStatus status = RepairStatus::kSuccess;
  RepairEdits edits;
  std::vector<Config> patched_configs;
  NetworkAnnotations patched_annotations;
  std::vector<std::string> change_log;
  std::string diff_text;
  int lines_changed = 0;
  int64_t predicted_cost = 0;
  RepairStats stats;
  obs::ProvenanceReport provenance;
  // Merged translator traces (lift phase, then fallback phase) for the
  // provenance config-lines join.
  std::vector<EditTrace> edit_traces;
  // Set when the lifted patch already re-verified clean (no fallback
  // translation ran): the final network and HARC, for the pipeline to reuse
  // instead of rebuilding.
  std::unique_ptr<Network> rebuilt_network;
  std::unique_ptr<Harc> rebuilt_harc;
};

struct CompressionOutcome {
  // Engaged when the pre-pass produced a repair; disengaged when it declined
  // (too small, not symmetric enough, nothing compressible) and the caller
  // should run the uncompressed pipeline. `stats` is meaningful either way.
  std::optional<CompressedRepairResult> result;
  CompressionStats stats;
};

// Cross-request cache of the base partition and per-pin-signature quotients,
// scoped to one configuration snapshot. The serve layer owns one per cached
// snapshot (differ-driven eviction drops it with the snapshot); the network
// generation id is the identity guard — a different network clears the
// cache. (A raw pointer guard would ABA: a freed network whose address is
// recycled by a new Network would false-hit and serve a stale partition.)
//
// Partitions do survive a generation change when the new network's roles are
// structurally identical (same per-device identity-abstracted canonical
// texts and pin keys): differ-small edits that leave every role signature
// intact rebind the cache instead of reseeding it.
class CompressionCache {
 public:
  Partition Base(const Network& network);
  std::shared_ptr<const Quotient> Find(const Network& network, const std::string& pin_key);
  void Insert(const Network& network, const std::string& pin_key,
              std::shared_ptr<const Quotient> quotient);

  int64_t hits() const;
  int64_t misses() const;
  // Times a generation change kept the cached partition because every role
  // signature matched (the differ-small reuse path).
  int64_t partition_reuses() const;

 private:
  void RebindLocked(const Network& network);

  mutable std::mutex mu_;
  uint64_t generation_ = 0;
  // Structural key of the cached snapshot (device names + role signatures +
  // link/subnet shape); a new generation with an identical key keeps base_.
  // Quotients embed the old network's concrete addresses, so they are always
  // dropped on rebind.
  std::string structure_;
  std::optional<Partition> base_;
  std::map<std::string, std::shared_ptr<const Quotient>> quotients_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t partition_reuses_ = 0;
};

// Runs the pre-pass under `options.compress` (never called with mode kOff).
// Only per-destination granularity compresses; the caller checks. Structural
// failures inside the *fallback* repair propagate as Error exactly like the
// uncompressed pipeline's; failures inside the abstraction itself only ever
// decline compression.
Result<CompressionOutcome> TryCompressedRepair(const Network& network, const Harc& harc,
                                               const std::vector<Policy>& policies,
                                               const RepairOptions& options);

}  // namespace cpr::compress

#endif  // CPR_SRC_COMPRESS_COMPRESS_H_
