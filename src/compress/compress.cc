#include "compress/compress.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>
#include <utility>

#include "compress/lift.h"
#include "config/diff.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "verify/checker.h"

namespace cpr::compress {

namespace {

class Timer {
 public:
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
};

// Pin the group's policy endpoints so refinement keeps them expressible: the
// destination becomes a singleton role, and each source carries the set of
// policy demands it places on this destination.
SubnetPins GroupPins(const RepairProblem& group) {
  SubnetPins pins;
  for (SubnetId dst : group.dsts) {
    pins.tokens[dst] = "dst";
  }
  std::map<SubnetId, std::set<std::string>> roles;
  for (const Policy& policy : group.policies) {
    std::string role = PolicyClassName(policy.pc);
    if (policy.pc == PolicyClass::kReachability) {
      role += ":" + std::to_string(policy.k);
    }
    roles[policy.src].insert(std::move(role));
  }
  for (const auto& [src, demands] : roles) {
    if (pins.tokens.count(src) > 0) {
      continue;  // A subnet that is also a destination keeps the dst pin.
    }
    std::string token = "src";
    for (const std::string& demand : demands) {
      token += ":" + demand;
    }
    pins.tokens[src] = token;
  }
  return pins;
}

bool Mappable(const RepairProblem& group) {
  return std::all_of(group.policies.begin(), group.policies.end(), [](const Policy& p) {
    return p.pc == PolicyClass::kAlwaysBlocked || p.pc == PolicyClass::kAlwaysWaypoint ||
           p.pc == PolicyClass::kReachability;
  });
}

void AccumulateCounters(const std::vector<std::pair<std::string, double>>& from,
                        std::map<std::string, double>* into) {
  for (const auto& [key, value] : from) {
    (*into)[key] += value;
  }
}

void AccumulateStats(const RepairStats& from, RepairStats* into,
                     std::map<std::string, double>* counter_totals) {
  into->problems_formulated += from.problems_formulated;
  into->problems_solved += from.problems_solved;
  into->problems_failed += from.problems_failed;
  into->destinations_skipped += from.destinations_skipped;
  into->encode_seconds += from.encode_seconds;
  into->solve_seconds += from.solve_seconds;
  into->solve_wall_seconds += from.solve_wall_seconds;
  into->wall_seconds += from.wall_seconds;
  into->bool_vars += from.bool_vars;
  into->hard_constraints += from.hard_constraints;
  into->soft_constraints += from.soft_constraints;
  into->certify_checked += from.certify_checked;
  into->certify_verified += from.certify_verified;
  into->certify_failed += from.certify_failed;
  into->certify_artifacts += from.certify_artifacts;
  AccumulateCounters(from.solver_counter_totals, counter_totals);
}

// Everything the base (unpinned) partition depends on: per-device role
// signatures plus the link/subnet shape WL refinement walks. Two networks
// with equal keys refine to the same block structure, so a cached partition
// may survive a snapshot change (differ-small reuse).
std::string StructureKey(const Network& network) {
  std::ostringstream key;
  for (const Device& device : network.devices()) {
    key << device.name << '\x1f'
        << RoleSignature(network.configs()[static_cast<size_t>(device.config_index)])
        << '\x1e';
  }
  for (const TopoLink& link : network.links()) {
    key << 'L' << link.device_a << ' ' << link.interface_a << ' ' << link.device_b << ' '
        << link.interface_b << ' ' << (link.waypoint ? 1 : 0) << '\x1e';
  }
  for (const Subnet& subnet : network.subnets()) {
    key << 'S' << subnet.prefix.ToString() << ' ' << subnet.device << ' '
        << subnet.interface << '\x1e';
  }
  return key.str();
}

void AppendEdits(const RepairEdits& from, RepairEdits* into) {
  auto append = [](const auto& src, auto* dst) {
    dst->insert(dst->end(), src.begin(), src.end());
  };
  append(from.adjacencies, &into->adjacencies);
  append(from.redistributions, &into->redistributions);
  append(from.filters, &into->filters);
  append(from.static_routes, &into->static_routes);
  append(from.acls, &into->acls);
  append(from.costs, &into->costs);
  append(from.waypoints, &into->waypoints);
}

}  // namespace

Partition CompressionCache::Base(const Network& network) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    RebindLocked(network);
    if (base_.has_value()) {
      ++hits_;
      return *base_;
    }
  }
  Partition computed = ComputePartition(network);
  std::lock_guard<std::mutex> lock(mu_);
  RebindLocked(network);
  if (!base_.has_value()) {
    ++misses_;
    base_ = computed;
  } else {
    ++hits_;
  }
  return *base_;
}

std::shared_ptr<const Quotient> CompressionCache::Find(const Network& network,
                                                       const std::string& pin_key) {
  std::lock_guard<std::mutex> lock(mu_);
  RebindLocked(network);
  auto it = quotients_.find(pin_key);
  if (it == quotients_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

void CompressionCache::Insert(const Network& network, const std::string& pin_key,
                              std::shared_ptr<const Quotient> quotient) {
  std::lock_guard<std::mutex> lock(mu_);
  RebindLocked(network);
  quotients_.emplace(pin_key, std::move(quotient));
}

int64_t CompressionCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t CompressionCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

int64_t CompressionCache::partition_reuses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return partition_reuses_;
}

void CompressionCache::RebindLocked(const Network& network) {
  if (generation_ == network.generation()) {
    return;
  }
  std::string structure = StructureKey(network);
  const bool reuse = base_.has_value() && structure == structure_;
  generation_ = network.generation();
  structure_ = std::move(structure);
  quotients_.clear();
  if (reuse) {
    ++partition_reuses_;
  } else {
    base_.reset();
  }
}

Result<CompressionOutcome> TryCompressedRepair(const Network& network, const Harc& harc,
                                               const std::vector<Policy>& policies,
                                               const RepairOptions& options) {
  CompressionOutcome outcome;
  CompressionStats& stats = outcome.stats;
  stats.attempted = true;
  stats.routers = static_cast<int>(network.devices().size());
  obs::Registry& registry = obs::CurrentRegistry();
  registry.counter("compression.attempted").Increment();
  const CompressOptions& copt = options.compress;

  auto decline = [&](const std::string& reason) {
    stats.skipped_reason = reason;
    stats.quotient_ratio = 1.0;
    registry.counter("compression.declined").Increment();
    return std::move(outcome);
  };

  if (options.granularity != Granularity::kPerDst) {
    return decline("compression requires per-destination granularity");
  }
  if (copt.mode == CompressMode::kAuto && stats.routers < copt.min_routers) {
    return decline("network smaller than min_routers");
  }

  // Go/no-go: the unpinned base partition bounds every pinned one.
  {
    Timer timer;
    Partition base =
        copt.cache != nullptr ? copt.cache->Base(network) : ComputePartition(network);
    stats.partition_seconds += timer.Seconds();
    stats.base_blocks = base.block_count();
    if (copt.mode == CompressMode::kAuto && base.Ratio() < copt.min_ratio) {
      return decline("base partition ratio below min_ratio");
    }
  }

  const std::vector<RepairProblem> groups = PartitionProblems(harc, policies, options);
  stats.groups_total = static_cast<int>(groups.size());
  if (groups.empty()) {
    return decline("no violations");
  }

  // --- Per-group quotient solves.
  RepairEdits lifted_edits;
  std::set<std::string> emitted;
  std::vector<Policy> compressed_policies;
  RepairStats merged;
  std::map<std::string, double> counter_totals;
  obs::ProvenanceReport provenance;
  int64_t predicted_cost = 0;
  double ratio_sum = 0;
  {
    obs::StageSpan span("pipeline.compress");
    for (const RepairProblem& group : groups) {
      if (!Mappable(group) || options.deadline.Expired()) {
        continue;  // The concrete fallback repair picks these up.
      }
      const SubnetPins pins = GroupPins(group);
      const std::string pin_key = pins.Key();
      std::shared_ptr<const Quotient> quotient =
          copt.cache != nullptr ? copt.cache->Find(network, pin_key) : nullptr;
      if (quotient != nullptr) {
        ++stats.cache_hits;
      } else {
        ++stats.cache_misses;
        Timer partition_timer;
        const Partition partition = ComputePartition(network, pins);
        stats.partition_seconds += partition_timer.Seconds();
        Timer quotient_timer;
        Result<Quotient> built = BuildQuotient(network, partition);
        stats.quotient_seconds += quotient_timer.Seconds();
        if (!built.ok()) {
          continue;
        }
        auto owned = std::make_shared<Quotient>(std::move(built).value());
        quotient = owned;
        if (copt.cache != nullptr) {
          copt.cache->Insert(network, pin_key, quotient);
        }
      }
      const double required_ratio =
          copt.mode == CompressMode::kAuto ? copt.min_ratio : 1.0001;
      if (quotient->Ratio() < required_ratio) {
        continue;
      }
      std::vector<Policy> quotient_policies;
      quotient_policies.reserve(group.policies.size());
      for (const Policy& policy : group.policies) {
        auto mapped = MapPolicy(*quotient, policy);
        if (!mapped.has_value()) {
          break;
        }
        quotient_policies.push_back(*mapped);
      }
      if (quotient_policies.size() != group.policies.size()) {
        continue;
      }
      RepairOptions quotient_options = options;
      quotient_options.compress = CompressOptions{};
      quotient_options.num_threads = 1;
      Timer solve_timer;
      Result<RepairOutcome> solved =
          ComputeRepair(*quotient->harc, quotient_policies, quotient_options);
      stats.solve_seconds += solve_timer.Seconds();
      if (!solved.ok() || !solved->HasRepair() ||
          solved->status == RepairStatus::kPartial) {
        continue;
      }

      LiftedEdits lift = LiftEdits(*quotient, solved->edits, &emitted);
      stats.abstract_edits += lift.abstract_edits;
      stats.lifted_edits += lift.concrete_edits;
      AppendEdits(lift.edits, &lifted_edits);

      // Merge stats and provenance, renumbering problems sequentially and
      // re-expressing every id in concrete terms.
      const int problem_base = static_cast<int>(merged.problem_reports.size());
      AccumulateStats(solved->stats, &merged, &counter_totals);
      for (ProblemReport report : solved->stats.problem_reports) {
        std::vector<SubnetId> concrete_dsts;
        for (SubnetId dst : report.dsts) {
          const auto& members = quotient->subnet_members[static_cast<size_t>(dst)];
          concrete_dsts.insert(concrete_dsts.end(), members.begin(), members.end());
        }
        report.dsts = std::move(concrete_dsts);
        merged.problem_reports.push_back(std::move(report));
      }
      std::vector<std::string> dst_names;
      for (SubnetId dst : group.dsts) {
        dst_names.push_back(network.subnets()[static_cast<size_t>(dst)].prefix.ToString());
      }
      std::vector<std::string> policy_names;
      for (const Policy& policy : group.policies) {
        policy_names.push_back(policy.ToString(network));
      }
      for (const obs::ProvenanceChain& chain : solved->provenance.chains) {
        auto fanout = lift.fanout.find(chain.construct);
        if (fanout == lift.fanout.end()) {
          continue;
        }
        for (const auto& [construct, description] : fanout->second) {
          obs::ProvenanceChain fanned = chain;
          fanned.construct = construct;
          fanned.edit = description;
          fanned.soft_label = construct;
          fanned.problem = problem_base + std::max(chain.problem, 0);
          fanned.dsts = dst_names;
          fanned.policies = policy_names;
          provenance.chains.push_back(std::move(fanned));
        }
      }
      for (const std::string& orphan : solved->provenance.orphan_edits) {
        auto fanout = lift.fanout.find(orphan);
        if (fanout != lift.fanout.end()) {
          for (const auto& [construct, description] : fanout->second) {
            (void)description;
            provenance.orphan_edits.push_back(construct);
          }
        } else {
          provenance.orphan_edits.push_back("quotient:" + orphan);
        }
      }

      compressed_policies.insert(compressed_policies.end(), group.policies.begin(),
                                 group.policies.end());
      ++stats.groups_compressed;
      ratio_sum += quotient->Ratio();
      predicted_cost += solved->predicted_cost;
    }
    if (stats.groups_compressed > 0) {
      std::ostringstream ratio;
      ratio << ratio_sum / stats.groups_compressed;
      span.Annotate("quotient_ratio", ratio.str());
      span.Annotate("groups_compressed", std::to_string(stats.groups_compressed));
    }
  }
  stats.groups_fallback = stats.groups_total - stats.groups_compressed;
  if (stats.groups_compressed == 0) {
    return decline("no compressible groups");
  }
  stats.quotient_ratio = ratio_sum / stats.groups_compressed;

  // --- Lift: translate on the concrete network, re-verify, fall back.
  Timer lift_timer;
  obs::StageSpan lift_span("pipeline.lift");
  Result<TranslationResult> translation = TranslateEdits(network, lifted_edits);
  if (!translation.ok()) {
    return decline("lifted edits failed to translate: " + translation.error().message());
  }
  Result<Network> rebuilt =
      Network::Build(translation->patched_configs, translation->annotations);
  if (!rebuilt.ok()) {
    return decline("lifted patch broke the network: " + rebuilt.error().message());
  }
  auto patched_network = std::make_unique<Network>(std::move(rebuilt).value());
  auto patched_harc = std::make_unique<Harc>(Harc::Build(*patched_network));
  const std::vector<Policy> residual = FindViolations(*patched_harc, policies);
  for (const Policy& policy : residual) {
    if (std::find(compressed_policies.begin(), compressed_policies.end(), policy) !=
        compressed_policies.end()) {
      ++stats.lift_verify_failures;
    }
  }
  stats.fallback_policies = static_cast<int>(residual.size());
  lift_span.Annotate("lifted_edits", std::to_string(stats.lifted_edits));
  lift_span.Annotate("verify_failures", std::to_string(stats.lift_verify_failures));

  CompressedRepairResult result;
  result.edits = lifted_edits;
  result.patched_configs = translation->patched_configs;
  result.patched_annotations = translation->annotations;
  result.change_log = translation->change_log;
  result.edit_traces = translation->edit_traces;
  result.predicted_cost = predicted_cost;
  result.provenance = std::move(provenance);

  if (residual.empty()) {
    result.status = RepairStatus::kSuccess;
    result.rebuilt_network = std::move(patched_network);
    result.rebuilt_harc = std::move(patched_harc);
  } else {
    // Uncompressed fallback on the patched network: repairs both the groups
    // compression never touched and any group whose lifted patch fell short.
    RepairOptions fallback_options = options;
    fallback_options.compress = CompressOptions{};
    Result<RepairOutcome> fallback =
        ComputeRepair(*patched_harc, residual, fallback_options);
    if (!fallback.ok()) {
      return fallback.error();
    }
    const int problem_base = static_cast<int>(merged.problem_reports.size());
    AccumulateStats(fallback->stats, &merged, &counter_totals);
    for (const ProblemReport& report : fallback->stats.problem_reports) {
      merged.problem_reports.push_back(report);
    }
    for (obs::ProvenanceChain chain : fallback->provenance.chains) {
      chain.problem += problem_base;
      result.provenance.chains.push_back(std::move(chain));
    }
    for (const std::string& orphan : fallback->provenance.orphan_edits) {
      result.provenance.orphan_edits.push_back(orphan);
    }
    for (obs::UnsatCoreReport core : fallback->provenance.unsat_cores) {
      core.problem += problem_base;
      result.provenance.unsat_cores.push_back(std::move(core));
    }
    if (fallback->HasRepair()) {
      Result<TranslationResult> second =
          TranslateEdits(*patched_network, fallback->edits);
      if (!second.ok()) {
        return second.error();
      }
      result.patched_configs = second->patched_configs;
      result.patched_annotations = second->annotations;
      result.change_log.insert(result.change_log.end(), second->change_log.begin(),
                               second->change_log.end());
      result.edit_traces.insert(result.edit_traces.end(), second->edit_traces.begin(),
                                second->edit_traces.end());
      AppendEdits(fallback->edits, &result.edits);
      result.predicted_cost += fallback->predicted_cost;
      result.status = fallback->status == RepairStatus::kSuccess ? RepairStatus::kSuccess
                                                                 : RepairStatus::kPartial;
    } else {
      // The lifted patch stands; the policies the fallback could not solve
      // remain in residual_graph_violations.
      result.status = RepairStatus::kPartial;
    }
  }
  stats.lift_seconds = lift_timer.Seconds();

  // Diff against the *original* configurations: phase-2 patches stack on
  // phase-1's, and "lines changed" must mean end to end.
  {
    std::ostringstream text;
    for (size_t i = 0; i < network.configs().size(); ++i) {
      const ConfigDiff diff = DiffConfigs(network.configs()[i], result.patched_configs[i]);
      if (diff.lines.empty()) {
        continue;
      }
      result.lines_changed += diff.total();
      text << "--- " << network.configs()[i].hostname << " ---\n" << diff.ToString();
    }
    result.diff_text = text.str();
  }

  merged.solver_counter_totals.assign(counter_totals.begin(), counter_totals.end());
  result.stats = std::move(merged);

  stats.applied = true;
  registry.counter("compression.applied").Increment();
  registry.counter("compression.groups_compressed")
      .Add(static_cast<int64_t>(stats.groups_compressed));
  registry.counter("compression.groups_fallback")
      .Add(static_cast<int64_t>(stats.groups_fallback));
  registry.counter("compression.abstract_edits")
      .Add(static_cast<int64_t>(stats.abstract_edits));
  registry.counter("compression.lifted_edits")
      .Add(static_cast<int64_t>(stats.lifted_edits));
  registry.counter("compression.lift_verify_failures")
      .Add(static_cast<int64_t>(stats.lift_verify_failures));
  registry.counter("compression.cache_hits").Add(static_cast<int64_t>(stats.cache_hits));
  registry.counter("compression.cache_misses")
      .Add(static_cast<int64_t>(stats.cache_misses));

  outcome.result = std::move(result);
  return outcome;
}

}  // namespace cpr::compress
