#include "compress/partition.h"

#include <algorithm>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "config/diff.h"
#include "config/printer.h"

namespace cpr::compress {

std::string SubnetPins::Key() const {
  std::string key;
  for (const auto& [subnet, token] : tokens) {
    key.append("s");
    key.append(std::to_string(subnet));
    key.append("=");
    key.append(token);
    key.append(";");
  }
  return key;
}

std::string RoleSignature(const Config& config) {
  Config abstracted = config;
  abstracted.hostname = "router";
  for (InterfaceConfig& interface : abstracted.interfaces) {
    if (interface.address.has_value()) {
      interface.address->ip = Ipv4Address(0);
    }
  }
  if (abstracted.bgp.has_value()) {
    for (BgpNeighbor& neighbor : abstracted.bgp->neighbors) {
      neighbor.ip = Ipv4Address(0);
    }
  }
  for (StaticRouteConfig& route : abstracted.static_routes) {
    route.next_hop = Ipv4Address(0);
  }
  return PrintConfig(abstracted);
}

namespace {

// Interns strings to dense colour ids.
class ColourTable {
 public:
  int Intern(const std::string& key) {
    auto [it, inserted] = ids_.emplace(key, static_cast<int>(ids_.size()));
    (void)inserted;
    return it->second;
  }
  int size() const { return static_cast<int>(ids_.size()); }

 private:
  std::unordered_map<std::string, int> ids_;
};

}  // namespace

Partition ComputePartition(const Network& network, const SubnetPins& pins) {
  const int n = static_cast<int>(network.devices().size());
  Partition partition;
  partition.block_of.assign(static_cast<size_t>(n), 0);
  if (n == 0) {
    return partition;
  }

  // --- Initial colours: differ-seeded configuration roles plus pins. Two
  // devices share an initial colour exactly when the differ reports zero
  // changed lines between their abstracted canonical texts (and their pinned
  // host subnets agree).
  std::vector<std::string> signature(static_cast<size_t>(n));
  for (DeviceId d = 0; d < n; ++d) {
    signature[static_cast<size_t>(d)] = RoleSignature(network.config_for(d));
  }
  for (const Subnet& subnet : network.subnets()) {
    // Pin tokens ride on the hosting device, tagged by interface so the
    // (interface -> subnet role) pairing is part of the colour.
    SubnetId id = *network.FindSubnet(subnet.prefix);
    auto it = pins.tokens.find(id);
    if (it != pins.tokens.end()) {
      signature[static_cast<size_t>(subnet.device)] +=
          "\npin " + subnet.interface + " " + it->second;
    }
  }
  std::vector<int> colour(static_cast<size_t>(n), -1);
  int colour_count = 0;
  {
    // Exemplar per colour; a device joins the first exemplar its signature
    // diffs cleanly against.
    std::unordered_map<std::string, std::vector<std::pair<DeviceId, int>>> buckets;
    for (DeviceId d = 0; d < n; ++d) {
      const std::string& sig = signature[static_cast<size_t>(d)];
      auto& bucket = buckets[sig];
      for (const auto& [exemplar, exemplar_colour] : bucket) {
        if (DiffConfigText(signature[static_cast<size_t>(exemplar)], sig).total() == 0) {
          colour[static_cast<size_t>(d)] = exemplar_colour;
          break;
        }
      }
      if (colour[static_cast<size_t>(d)] < 0) {
        colour[static_cast<size_t>(d)] = colour_count++;
        bucket.emplace_back(d, colour[static_cast<size_t>(d)]);
      }
    }
  }

  // --- Link roles: (peer, my cost, peer cost, waypoint) per incident link.
  struct Incident {
    DeviceId peer = -1;
    int my_cost = 1;
    int peer_cost = 1;
    bool waypoint = false;
  };
  std::vector<std::vector<Incident>> incident(static_cast<size_t>(n));
  for (const TopoLink& link : network.links()) {
    auto cost = [&](DeviceId device, const std::string& interface) {
      const InterfaceConfig* config = network.config_for(device).FindInterface(interface);
      return config != nullptr ? config->ospf_cost : 1;
    };
    const int cost_a = cost(link.device_a, link.interface_a);
    const int cost_b = cost(link.device_b, link.interface_b);
    incident[static_cast<size_t>(link.device_a)].push_back(
        {link.device_b, cost_a, cost_b, link.waypoint});
    incident[static_cast<size_t>(link.device_b)].push_back(
        {link.device_a, cost_b, cost_a, link.waypoint});
  }

  // --- Refinement to fixpoint. The previous colour is part of the key, so
  // the partition only ever splits; it stabilizes in at most n rounds.
  while (true) {
    ColourTable table;
    std::vector<int> next(static_cast<size_t>(n));
    for (DeviceId d = 0; d < n; ++d) {
      std::vector<std::tuple<int, int, int, bool>> roles;
      roles.reserve(incident[static_cast<size_t>(d)].size());
      for (const Incident& link : incident[static_cast<size_t>(d)]) {
        roles.emplace_back(colour[static_cast<size_t>(link.peer)], link.my_cost,
                           link.peer_cost, link.waypoint);
      }
      std::sort(roles.begin(), roles.end());
      std::string key = std::to_string(colour[static_cast<size_t>(d)]);
      for (const auto& [peer, mine, theirs, waypoint] : roles) {
        key += "|" + std::to_string(peer) + "," + std::to_string(mine) + "," +
               std::to_string(theirs) + (waypoint ? ",w" : "");
      }
      next[static_cast<size_t>(d)] = table.Intern(key);
    }
    ++partition.rounds;
    const bool stable = table.size() == colour_count;
    colour_count = table.size();
    colour = std::move(next);
    if (stable) {
      break;
    }
  }

  // --- Blocks ordered by lowest member, members ascending.
  std::vector<int> block_for_colour(static_cast<size_t>(colour_count), -1);
  for (DeviceId d = 0; d < n; ++d) {
    int& block = block_for_colour[static_cast<size_t>(colour[static_cast<size_t>(d)])];
    if (block < 0) {
      block = static_cast<int>(partition.members.size());
      partition.members.emplace_back();
    }
    partition.block_of[static_cast<size_t>(d)] = block;
    partition.members[static_cast<size_t>(block)].push_back(d);
  }
  return partition;
}

}  // namespace cpr::compress
