#include "simulate/simulator.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>

#include "arc/harc.h"

namespace cpr {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Whether `process` on `device` participates on its side of `link` for
// adjacency formation. (Duplicated from the HARC builder on purpose: the
// simulator is an independent check of the same configuration semantics.)
bool SideConfigured(const Network& network, ProcessId process, LinkId link,
                    DeviceId device) {
  const RoutingProcess& proc = network.processes()[static_cast<size_t>(process)];
  if (proc.device != device) {
    return false;
  }
  auto [intf, peer_intf] = network.LinkInterfaces(link, device);
  if (!network.ProcessUsesInterface(process, intf)) {
    return false;
  }
  if (proc.kind == RouteSource::kOspf) {
    const OspfConfig* ospf = network.config_for(device).FindOspf(proc.protocol_id);
    if (ospf != nullptr && ospf->passive_interfaces.count(intf) > 0) {
      return false;
    }
  }
  return true;
}

// The process of the given kind on a device (nullopt if none).
std::optional<ProcessId> ProcessOfKind(const Network& network, DeviceId device,
                                       RouteSource kind) {
  for (ProcessId p : network.devices()[static_cast<size_t>(device)].processes) {
    if (network.processes()[static_cast<size_t>(p)].kind == kind) {
      return p;
    }
  }
  return std::nullopt;
}

bool ProcessRedistributes(const Network& network, ProcessId process, RouteSource from) {
  const RoutingProcess& proc = network.processes()[static_cast<size_t>(process)];
  const Config& config = network.config_for(proc.device);
  const std::vector<Redistribution>* redists = nullptr;
  switch (proc.kind) {
    case RouteSource::kOspf: {
      const OspfConfig* ospf = config.FindOspf(proc.protocol_id);
      redists = ospf != nullptr ? &ospf->redistributes : nullptr;
      break;
    }
    case RouteSource::kBgp:
      redists = config.bgp.has_value() ? &config.bgp->redistributes : nullptr;
      break;
    case RouteSource::kRip:
      redists = config.rip.has_value() ? &config.rip->redistributes : nullptr;
      break;
    default:
      break;
  }
  if (redists == nullptr) {
    return false;
  }
  return std::any_of(redists->begin(), redists->end(),
                     [from](const Redistribution& r) { return r.from == from; });
}

int InterfaceCost(const Network& network, DeviceId device, const std::string& interface) {
  const InterfaceConfig* intf = network.config_for(device).FindInterface(interface);
  return intf != nullptr ? intf->ospf_cost : 1;
}

bool AclAt(const Network& network, DeviceId device, const std::string& interface,
           bool inbound, const TrafficClass& tc) {
  const Config& config = network.config_for(device);
  const InterfaceConfig* intf = config.FindInterface(interface);
  if (intf == nullptr) {
    return false;
  }
  const std::optional<std::string>& name = inbound ? intf->acl_in : intf->acl_out;
  if (!name.has_value()) {
    return false;
  }
  const AccessList* acl = config.FindAccessList(*name);
  return acl != nullptr && !acl->Permits(tc);
}

}  // namespace

std::vector<std::optional<Simulator::RouteEntry>> Simulator::ComputeRoutes(
    SubnetId dst, const std::set<LinkId>& failed) const {
  const Network& network = *network_;
  const size_t device_count = network.devices().size();
  const Subnet& subnet = network.subnets()[static_cast<size_t>(dst)];

  std::vector<std::optional<RouteEntry>> best(device_count);

  // Connected route on the attachment device.
  best[static_cast<size_t>(subnet.device)] = RouteEntry{kAdConnected, std::nullopt};

  // Static routes with a resolvable next hop over an alive link.
  std::vector<std::optional<std::pair<int, LinkId>>> static_routes(device_count);
  for (size_t d = 0; d < device_count; ++d) {
    const Config& config = network.configs()[network.devices()[d].config_index];
    const StaticRouteConfig* chosen = nullptr;
    std::optional<LinkId> chosen_link;
    for (const StaticRouteConfig& route : config.static_routes) {
      if (!route.prefix.Contains(subnet.prefix)) {
        continue;
      }
      auto next_hop = network.ResolveNextHop(static_cast<DeviceId>(d), route.next_hop);
      if (!next_hop.has_value() || failed.count(next_hop->link) > 0) {
        continue;
      }
      // Prefer more-specific prefixes, then lower administrative distance.
      if (chosen == nullptr || route.prefix.length() > chosen->prefix.length() ||
          (route.prefix.length() == chosen->prefix.length() &&
           route.distance < chosen->distance)) {
        chosen = &route;
        chosen_link = next_hop->link;
      }
    }
    if (chosen != nullptr) {
      static_routes[d] = {chosen->distance, *chosen_link};
      if (!best[d].has_value() || chosen->distance < best[d]->admin_distance) {
        best[d] = RouteEntry{chosen->distance, chosen_link};
      }
    }
  }

  // Protocol routes; two passes so redistribution between protocols
  // stabilizes (redistribution chains in the supported config model are
  // acyclic and short).
  struct ProtocolSpec {
    RouteSource kind;
    int admin_distance;
    bool use_interface_costs;
  };
  const ProtocolSpec specs[] = {
      {RouteSource::kBgp, kAdBgp, false},
      {RouteSource::kOspf, kAdOspf, true},
      {RouteSource::kRip, kAdRip, false},
  };
  // proto_dist[kind index][device]: metric within that protocol (kInf: none).
  std::vector<std::vector<double>> proto_dist(3,
                                              std::vector<double>(device_count, kInf));

  for (int pass = 0; pass < 2; ++pass) {
    for (int si = 0; si < 3; ++si) {
      const ProtocolSpec& spec = specs[si];
      // Participating process per device: runs the protocol and does not
      // filter this destination (ARC semantics: filtered processes neither
      // use nor relay routes for the destination).
      std::vector<std::optional<ProcessId>> member(device_count);
      for (size_t d = 0; d < device_count; ++d) {
        std::optional<ProcessId> p =
            ProcessOfKind(network, static_cast<DeviceId>(d), spec.kind);
        if (p.has_value() && !ProcessBlocksDestination(network, *p, subnet.prefix)) {
          member[d] = p;
        }
      }

      // Origination: who advertises dst into this protocol? Advertisements
      // carry a starting metric: 0 for directly participating interfaces and
      // connected redistribution, a small penalty for redistributed routes —
      // mirroring OSPF's preference for internal routes over externals and
      // keeping backup-static advertisers from attracting ties.
      constexpr double kRedistPenalty = 0.5;
      std::vector<double> advertises(device_count, kInf);
      for (size_t d = 0; d < device_count; ++d) {
        if (!member[d].has_value()) {
          continue;
        }
        const Config& config = network.configs()[network.devices()[d].config_index];
        bool attached = static_cast<DeviceId>(d) == subnet.device;
        // Direct participation: the destination interface is covered by a
        // `network` statement.
        if (attached) {
          const InterfaceConfig* intf = config.FindInterface(subnet.interface);
          if (intf != nullptr && intf->address.has_value() &&
              network.ProcessUsesInterface(*member[d], subnet.interface)) {
            advertises[d] = 0.0;
          }
          if (ProcessRedistributes(network, *member[d], RouteSource::kConnected)) {
            advertises[d] = 0.0;
          }
        }
        if (ProcessRedistributes(network, *member[d], RouteSource::kStatic) &&
            static_routes[d].has_value()) {
          advertises[d] = std::min(advertises[d], kRedistPenalty);
        }
        // BGP `network` statements originate configured prefixes.
        if (spec.kind == RouteSource::kBgp && config.bgp.has_value() && attached) {
          for (const Ipv4Prefix& net : config.bgp->networks) {
            if (net.Contains(subnet.prefix)) {
              advertises[d] = 0.0;
            }
          }
        }
        // Redistribution from other protocols (uses the previous pass's
        // routes).
        for (int sj = 0; sj < 3; ++sj) {
          if (sj != si && ProcessRedistributes(network, *member[d], specs[sj].kind) &&
              proto_dist[static_cast<size_t>(sj)][d] != kInf) {
            advertises[d] = std::min(advertises[d], kRedistPenalty);
          }
        }
      }

      // Multi-source Dijkstra toward the advertisers over established
      // adjacencies, keeping the two best labels with *distinct* sources per
      // device. An advertiser routes toward the nearest other advertiser
      // (real OSPF: an ASBR does not install its self-originated external,
      // but does install other ASBRs' — exactly how a backup static route
      // stays a backup).
      struct Label {
        double dist = kInf;
        DeviceId source = -1;
        std::optional<LinkId> via;
      };
      std::vector<std::vector<Label>> labels(device_count);
      struct QueueEntry {
        double dist;
        DeviceId device;
        DeviceId source;
        std::optional<LinkId> via;
        // Deterministic total order: distance first, then stable tie-breaks.
        bool operator>(const QueueEntry& other) const {
          if (dist != other.dist) {
            return dist > other.dist;
          }
          if (source != other.source) {
            return source > other.source;
          }
          if (device != other.device) {
            return device > other.device;
          }
          return via.value_or(-1) > other.via.value_or(-1);
        }
      };
      std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue;
      for (size_t d = 0; d < device_count; ++d) {
        if (advertises[d] != kInf && member[d].has_value()) {
          queue.push({advertises[d], static_cast<DeviceId>(d), static_cast<DeviceId>(d),
                      std::nullopt});
        }
      }
      // Entries pop in nondecreasing distance; a device settles at most two
      // labels, each for a distinct source.
      auto try_settle = [&labels](const QueueEntry& entry) {
        auto& settled = labels[static_cast<size_t>(entry.device)];
        if (settled.size() >= 2) {
          return false;
        }
        for (const Label& label : settled) {
          if (label.source == entry.source) {
            return false;
          }
        }
        settled.push_back(Label{entry.dist, entry.source, entry.via});
        return true;
      };
      while (!queue.empty()) {
        QueueEntry entry = queue.top();
        queue.pop();
        if (!try_settle(entry)) {
          continue;
        }
        DeviceId v = entry.device;
        for (size_t l = 0; l < network.links().size(); ++l) {
          LinkId link = static_cast<LinkId>(l);
          if (failed.count(link) > 0) {
            continue;
          }
          const TopoLink& topo_link = network.links()[l];
          DeviceId u;
          if (topo_link.device_a == v) {
            u = topo_link.device_b;
          } else if (topo_link.device_b == v) {
            u = topo_link.device_a;
          } else {
            continue;
          }
          if (!member[static_cast<size_t>(u)].has_value() ||
              !member[static_cast<size_t>(v)].has_value()) {
            continue;
          }
          bool adjacent =
              SideConfigured(network, *member[static_cast<size_t>(u)], link, u) &&
              SideConfigured(network, *member[static_cast<size_t>(v)], link, v);
          if (!adjacent) {
            continue;
          }
          auto [u_intf, v_intf] = network.LinkInterfaces(link, u);
          double edge_cost =
              spec.use_interface_costs ? InterfaceCost(network, u, u_intf) : 1.0;
          queue.push({entry.dist + edge_cost, u, entry.source, link});
        }
      }

      // Install protocol routes where they beat the current best; a device
      // never uses a route sourced at itself.
      std::vector<double>& dist = proto_dist[static_cast<size_t>(si)];
      std::fill(dist.begin(), dist.end(), kInf);
      for (size_t d = 0; d < device_count; ++d) {
        const Label* chosen = nullptr;
        for (const Label& label : labels[d]) {
          if (label.source != -1 && label.source != static_cast<DeviceId>(d) &&
              label.via.has_value() && (chosen == nullptr || label.dist < chosen->dist)) {
            chosen = &label;
          }
        }
        // Record protocol-level reachability for redistribution chains: the
        // device "has" a route if it can reach any advertiser, itself
        // included.
        for (const Label& label : labels[d]) {
          dist[d] = std::min(dist[d], label.dist);
        }
        if (chosen == nullptr) {
          continue;
        }
        if (!best[d].has_value() || spec.admin_distance < best[d]->admin_distance) {
          best[d] = RouteEntry{spec.admin_distance, chosen->via};
        }
      }
    }
  }
  return best;
}

ForwardingOutcome Simulator::Forward(SubnetId src, SubnetId dst,
                                     const std::set<LinkId>& failed) const {
  const Network& network = *network_;
  const Subnet& src_subnet = network.subnets()[static_cast<size_t>(src)];
  const Subnet& dst_subnet = network.subnets()[static_cast<size_t>(dst)];
  const TrafficClass tc(src_subnet.prefix, dst_subnet.prefix);

  ForwardingOutcome outcome;
  // Entering the first router from the source subnet.
  if (AclAt(network, src_subnet.device, src_subnet.interface, /*inbound=*/true, tc)) {
    outcome.kind = ForwardingOutcome::Kind::kAclDropped;
    return outcome;
  }

  std::vector<std::optional<RouteEntry>> routes = ComputeRoutes(dst, failed);
  std::set<DeviceId> visited;
  DeviceId current = src_subnet.device;
  while (true) {
    outcome.path.push_back(current);
    if (!visited.insert(current).second) {
      outcome.kind = ForwardingOutcome::Kind::kLoop;
      return outcome;
    }
    if (current == dst_subnet.device) {
      // Local delivery through the destination-facing interface.
      if (AclAt(network, current, dst_subnet.interface, /*inbound=*/false, tc)) {
        outcome.kind = ForwardingOutcome::Kind::kAclDropped;
        return outcome;
      }
      outcome.kind = ForwardingOutcome::Kind::kDelivered;
      return outcome;
    }
    const std::optional<RouteEntry>& route = routes[static_cast<size_t>(current)];
    if (!route.has_value() || !route->out_link.has_value()) {
      outcome.kind = ForwardingOutcome::Kind::kNoRoute;
      return outcome;
    }
    LinkId link = *route->out_link;
    DeviceId next = network.LinkPeer(link, current);
    auto [egress_intf, ingress_intf] = network.LinkInterfaces(link, current);
    if (AclAt(network, current, egress_intf, /*inbound=*/false, tc) ||
        AclAt(network, next, ingress_intf, /*inbound=*/true, tc)) {
      outcome.kind = ForwardingOutcome::Kind::kAclDropped;
      return outcome;
    }
    outcome.links.push_back(link);
    if (network.links()[static_cast<size_t>(link)].waypoint) {
      outcome.crossed_waypoint = true;
    }
    current = next;
  }
}

namespace {

// Invokes `visit` on every subset of links of size <= max_size; stops early
// when `visit` returns false.
bool ForEachFailureSet(int link_count, int max_size,
                       const std::function<bool(const std::set<LinkId>&)>& visit) {
  std::set<LinkId> failed;
  std::function<bool(int, int)> recurse = [&](int start, int remaining) {
    if (!visit(failed)) {
      return false;
    }
    if (remaining == 0) {
      return true;
    }
    for (int l = start; l < link_count; ++l) {
      failed.insert(l);
      if (!recurse(l + 1, remaining - 1)) {
        return false;
      }
      failed.erase(l);
    }
    return true;
  };
  return recurse(0, std::min(max_size, link_count));
}

}  // namespace

bool CheckPolicyBySimulation(const Network& network, const Policy& policy,
                             int failure_cap) {
  Simulator simulator(network);
  const int link_count = static_cast<int>(network.links().size());
  switch (policy.pc) {
    case PolicyClass::kAlwaysBlocked:
      return ForEachFailureSet(link_count, failure_cap, [&](const std::set<LinkId>& f) {
        return simulator.Forward(policy.src, policy.dst, f).kind !=
               ForwardingOutcome::Kind::kDelivered;
      });
    case PolicyClass::kAlwaysWaypoint:
      return ForEachFailureSet(link_count, failure_cap, [&](const std::set<LinkId>& f) {
        ForwardingOutcome outcome = simulator.Forward(policy.src, policy.dst, f);
        return outcome.kind != ForwardingOutcome::Kind::kDelivered ||
               outcome.crossed_waypoint;
      });
    case PolicyClass::kReachability:
      // "< k failures" is the exact quantifier; enumerate k-1 failures.
      return ForEachFailureSet(link_count, policy.k - 1, [&](const std::set<LinkId>& f) {
        return simulator.Forward(policy.src, policy.dst, f).kind ==
               ForwardingOutcome::Kind::kDelivered;
      });
    case PolicyClass::kPrimaryPath: {
      ForwardingOutcome outcome = simulator.Forward(policy.src, policy.dst, {});
      return outcome.kind == ForwardingOutcome::Kind::kDelivered &&
             outcome.path == policy.primary_path;
    }
    case PolicyClass::kIsolation:
      // Under every enumerated failure set, the two flows must not cross a
      // common link (vacuous when either is not delivered).
      return ForEachFailureSet(link_count, failure_cap, [&](const std::set<LinkId>& f) {
        ForwardingOutcome a = simulator.Forward(policy.src, policy.dst, f);
        ForwardingOutcome b = simulator.Forward(policy.src2, policy.dst2, f);
        if (a.kind != ForwardingOutcome::Kind::kDelivered ||
            b.kind != ForwardingOutcome::Kind::kDelivered) {
          return true;
        }
        std::set<LinkId> links_a(a.links.begin(), a.links.end());
        return std::none_of(b.links.begin(), b.links.end(),
                            [&](LinkId l) { return links_a.count(l) > 0; });
      });
  }
  return false;
}

std::vector<Policy> FindSimulationViolations(const Network& network,
                                             const std::vector<Policy>& policies,
                                             int failure_cap) {
  std::vector<Policy> violations;
  for (const Policy& policy : policies) {
    if (!CheckPolicyBySimulation(network, policy, failure_cap)) {
      violations.push_back(policy);
    }
  }
  return violations;
}

}  // namespace cpr
