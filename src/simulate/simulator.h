// Control-plane simulator: independent, execution-based validation of
// repairs.
//
// The paper's guarantee is that after applying CPR's patches "the network is
// guaranteed to compute policy-compliant paths for all traffic classes under
// arbitrary failures". This module checks that property the way a network
// would realize it — not through the ETG abstraction, but by actually
// computing per-destination routing tables (connected > static-by-AD > BGP >
// OSPF > RIP, with redistribution), walking the forwarding path hop by hop
// with ACL evaluation at each interface crossing, and enumerating link
// failure sets.
//
// Deliberate semantic alignment with ARC (and its documented deviation from
// some real OSPF deployments, paper §2.1 footnote 1): a process whose route
// filter blocks a destination neither uses nor relays routes for it.

#ifndef CPR_SRC_SIMULATE_SIMULATOR_H_
#define CPR_SRC_SIMULATE_SIMULATOR_H_

#include <optional>
#include <set>
#include <vector>

#include "topo/network.h"
#include "verify/policy.h"

namespace cpr {

struct ForwardingOutcome {
  enum class Kind {
    kDelivered,   // Reached the destination subnet.
    kAclDropped,  // A packet filter discarded the traffic.
    kNoRoute,     // A device had no route (blackhole).
    kLoop,        // Forwarding revisited a device.
  };
  Kind kind = Kind::kNoRoute;
  std::vector<DeviceId> path;   // Devices visited, in order.
  std::vector<LinkId> links;    // Links traversed.
  bool crossed_waypoint = false;
};

class Simulator {
 public:
  explicit Simulator(const Network& network) : network_(&network) {}

  // Forwards one packet of the (src subnet -> dst subnet) traffic class with
  // the given links failed.
  ForwardingOutcome Forward(SubnetId src, SubnetId dst,
                            const std::set<LinkId>& failed = {}) const;

  // The best route each device holds toward `dst` under the failure set:
  // the link to forward on, or nullopt for no route / local delivery.
  struct RouteEntry {
    int admin_distance = 255;
    std::optional<LinkId> out_link;  // nullopt: locally attached.
  };
  std::vector<std::optional<RouteEntry>> ComputeRoutes(
      SubnetId dst, const std::set<LinkId>& failed) const;

 private:
  const Network* network_;
};

// Checks `policy` by failure enumeration. PC3 enumerates exactly the failure
// sets its semantics quantify over (< k failed links); PC1/PC2 quantify over
// *arbitrary* failures, so enumeration is truncated at `failure_cap`
// simultaneous failures (pass the link count for an exhaustive check on
// small networks). PC4 is checked in the no-failure state.
bool CheckPolicyBySimulation(const Network& network, const Policy& policy,
                             int failure_cap = 2);

// All policies that fail simulation.
std::vector<Policy> FindSimulationViolations(const Network& network,
                                             const std::vector<Policy>& policies,
                                             int failure_cap = 2);

}  // namespace cpr

#endif  // CPR_SRC_SIMULATE_SIMULATOR_H_
