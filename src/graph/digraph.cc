#include "graph/digraph.h"

#include <algorithm>
#include <cassert>

namespace cpr {

VertexId Digraph::AddVertex() {
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return static_cast<VertexId>(out_edges_.size() - 1);
}

EdgeId Digraph::AddEdge(VertexId from, VertexId to, double weight) {
  assert(from >= 0 && from < VertexCount());
  assert(to >= 0 && to < VertexCount());
  EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(DigraphEdge{from, to, weight});
  removed_.push_back(false);
  out_edges_[static_cast<size_t>(from)].push_back(id);
  in_edges_[static_cast<size_t>(to)].push_back(id);
  return id;
}

void Digraph::RemoveEdge(EdgeId edge) { removed_[static_cast<size_t>(edge)] = true; }

void Digraph::RestoreEdge(EdgeId edge) { removed_[static_cast<size_t>(edge)] = false; }

int Digraph::ActiveEdgeCount() const {
  return static_cast<int>(std::count(removed_.begin(), removed_.end(), false));
}

std::vector<EdgeId> Digraph::OutEdges(VertexId v) const {
  std::vector<EdgeId> out;
  for (EdgeId id : out_edges_[static_cast<size_t>(v)]) {
    if (!removed_[static_cast<size_t>(id)]) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<EdgeId> Digraph::InEdges(VertexId v) const {
  std::vector<EdgeId> in;
  for (EdgeId id : in_edges_[static_cast<size_t>(v)]) {
    if (!removed_[static_cast<size_t>(id)]) {
      in.push_back(id);
    }
  }
  return in;
}

std::optional<EdgeId> Digraph::FindEdge(VertexId from, VertexId to) const {
  for (EdgeId id : out_edges_[static_cast<size_t>(from)]) {
    if (!removed_[static_cast<size_t>(id)] && edges_[static_cast<size_t>(id)].to == to) {
      return id;
    }
  }
  return std::nullopt;
}

}  // namespace cpr
