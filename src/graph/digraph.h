// A compact directed graph with weighted edges.
//
// This is the substrate under ARC's extended topology graphs (ETGs): the
// policy verifiers (src/verify) run shortest-path, reachability, and
// max-flow queries over it, and the repair encoder enumerates its candidate
// edges. Vertices and edges are dense integer ids so algorithm state lives
// in flat vectors.

#ifndef CPR_SRC_GRAPH_DIGRAPH_H_
#define CPR_SRC_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cpr {

using VertexId = int32_t;
using EdgeId = int32_t;

inline constexpr VertexId kInvalidVertex = -1;
inline constexpr EdgeId kInvalidEdge = -1;

struct DigraphEdge {
  VertexId from = kInvalidVertex;
  VertexId to = kInvalidVertex;
  double weight = 1.0;
};

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(int vertex_count) : out_edges_(vertex_count), in_edges_(vertex_count) {}

  VertexId AddVertex();

  // Adds a directed edge; parallel edges are allowed (an ETG never creates
  // them, but flow algorithms build residual multigraphs).
  EdgeId AddEdge(VertexId from, VertexId to, double weight = 1.0);

  // Logically removes an edge: it stays allocated (ids remain stable) but is
  // skipped by all traversals. Used to model link failures.
  void RemoveEdge(EdgeId edge);
  void RestoreEdge(EdgeId edge);
  bool IsEdgeRemoved(EdgeId edge) const { return removed_[static_cast<size_t>(edge)]; }

  int VertexCount() const { return static_cast<int>(out_edges_.size()); }
  int EdgeCount() const { return static_cast<int>(edges_.size()); }
  // Number of edges not logically removed.
  int ActiveEdgeCount() const;

  const DigraphEdge& edge(EdgeId id) const { return edges_[static_cast<size_t>(id)]; }
  void SetEdgeWeight(EdgeId id, double weight) {
    edges_[static_cast<size_t>(id)].weight = weight;
  }

  // Active (non-removed) outgoing/incoming edge ids of a vertex.
  std::vector<EdgeId> OutEdges(VertexId v) const;
  std::vector<EdgeId> InEdges(VertexId v) const;

  // Finds an active edge from `from` to `to`, if any.
  std::optional<EdgeId> FindEdge(VertexId from, VertexId to) const;

 private:
  std::vector<DigraphEdge> edges_;
  std::vector<bool> removed_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
};

}  // namespace cpr

#endif  // CPR_SRC_GRAPH_DIGRAPH_H_
