// Dijkstra shortest paths over a Digraph.
//
// Used by the PC4 verifier (is the shortest SRC->DST path exactly P?), by
// the control-plane simulator (OSPF SPF), and by path-equivalence checks.

#ifndef CPR_SRC_GRAPH_SHORTEST_PATH_H_
#define CPR_SRC_GRAPH_SHORTEST_PATH_H_

#include <limits>
#include <vector>

#include "graph/digraph.h"

namespace cpr {

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

struct ShortestPathTree {
  // Distance from the source; kUnreachable if no path.
  std::vector<double> distance;
  // Edge entering each vertex on a shortest path; kInvalidEdge at the source
  // and at unreachable vertices.
  std::vector<EdgeId> parent_edge;

  bool Reached(VertexId v) const { return distance[static_cast<size_t>(v)] != kUnreachable; }
};

// Single-source shortest paths; all edge weights must be non-negative. Ties
// are broken deterministically by preferring the lower predecessor edge id,
// which keeps simulator output stable across runs.
ShortestPathTree DijkstraFrom(const Digraph& graph, VertexId source);

// The shortest source->target path as a sequence of edge ids, or empty if
// target is unreachable (or equals source).
std::vector<EdgeId> ShortestPathEdges(const Digraph& graph, VertexId source, VertexId target);

// The same path as a vertex sequence [source, ..., target]; empty if
// unreachable.
std::vector<VertexId> ShortestPathVertices(const Digraph& graph, VertexId source,
                                           VertexId target);

}  // namespace cpr

#endif  // CPR_SRC_GRAPH_SHORTEST_PATH_H_
