// BFS reachability over a Digraph, with an edge filter hook.
//
// The PC1 verifier asks "is DST reachable from SRC at all"; the PC2 verifier
// asks the same question on the subgraph without waypoint edges, which is
// what the filter callback supports.

#ifndef CPR_SRC_GRAPH_REACHABILITY_H_
#define CPR_SRC_GRAPH_REACHABILITY_H_

#include <functional>
#include <vector>

#include "graph/digraph.h"

namespace cpr {

// Every edge for which `allow_edge` returns false is treated as absent. A
// null filter admits all active edges.
using EdgeFilter = std::function<bool(EdgeId)>;

bool IsReachable(const Digraph& graph, VertexId source, VertexId target,
                 const EdgeFilter& allow_edge = nullptr);

// All vertices reachable from `source` (including `source` itself).
std::vector<VertexId> ReachableSet(const Digraph& graph, VertexId source,
                                   const EdgeFilter& allow_edge = nullptr);

}  // namespace cpr

#endif  // CPR_SRC_GRAPH_REACHABILITY_H_
