#include "graph/reachability.h"

#include <deque>

namespace cpr {

std::vector<VertexId> ReachableSet(const Digraph& graph, VertexId source,
                                   const EdgeFilter& allow_edge) {
  std::vector<bool> seen(static_cast<size_t>(graph.VertexCount()), false);
  std::deque<VertexId> frontier;
  std::vector<VertexId> out;
  seen[static_cast<size_t>(source)] = true;
  frontier.push_back(source);
  while (!frontier.empty()) {
    VertexId v = frontier.front();
    frontier.pop_front();
    out.push_back(v);
    for (EdgeId id : graph.OutEdges(v)) {
      if (allow_edge && !allow_edge(id)) {
        continue;
      }
      VertexId to = graph.edge(id).to;
      if (!seen[static_cast<size_t>(to)]) {
        seen[static_cast<size_t>(to)] = true;
        frontier.push_back(to);
      }
    }
  }
  return out;
}

bool IsReachable(const Digraph& graph, VertexId source, VertexId target,
                 const EdgeFilter& allow_edge) {
  if (source == target) {
    return true;
  }
  std::vector<bool> seen(static_cast<size_t>(graph.VertexCount()), false);
  std::deque<VertexId> frontier;
  seen[static_cast<size_t>(source)] = true;
  frontier.push_back(source);
  while (!frontier.empty()) {
    VertexId v = frontier.front();
    frontier.pop_front();
    for (EdgeId id : graph.OutEdges(v)) {
      if (allow_edge && !allow_edge(id)) {
        continue;
      }
      VertexId to = graph.edge(id).to;
      if (to == target) {
        return true;
      }
      if (!seen[static_cast<size_t>(to)]) {
        seen[static_cast<size_t>(to)] = true;
        frontier.push_back(to);
      }
    }
  }
  return false;
}

}  // namespace cpr
