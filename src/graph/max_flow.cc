#include "graph/max_flow.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace cpr {

namespace {

// Residual arc: a forward copy of an original edge or its reverse.
struct ResidualArc {
  VertexId to = kInvalidVertex;
  int capacity = 0;
  EdgeId original = kInvalidEdge;  // kInvalidEdge for reverse arcs
  size_t reverse_index = 0;        // Index of the paired arc in arcs[to].
};

class ResidualGraph {
 public:
  ResidualGraph(const Digraph& graph, const std::vector<int>& capacity)
      : arcs_(static_cast<size_t>(graph.VertexCount())) {
    for (EdgeId id = 0; id < graph.EdgeCount(); ++id) {
      if (graph.IsEdgeRemoved(id)) {
        continue;
      }
      const DigraphEdge& edge = graph.edge(id);
      size_t fwd_index = arcs_[static_cast<size_t>(edge.from)].size();
      size_t rev_index = arcs_[static_cast<size_t>(edge.to)].size();
      arcs_[static_cast<size_t>(edge.from)].push_back(
          ResidualArc{edge.to, capacity[static_cast<size_t>(id)], id, rev_index});
      arcs_[static_cast<size_t>(edge.to)].push_back(
          ResidualArc{edge.from, 0, kInvalidEdge, fwd_index});
    }
  }

  // One BFS augmentation; returns the amount pushed (0 when no augmenting
  // path remains).
  int Augment(VertexId source, VertexId target) {
    std::vector<std::pair<VertexId, size_t>> parent(arcs_.size(), {kInvalidVertex, 0});
    std::vector<bool> seen(arcs_.size(), false);
    std::deque<VertexId> frontier;
    seen[static_cast<size_t>(source)] = true;
    frontier.push_back(source);
    while (!frontier.empty() && !seen[static_cast<size_t>(target)]) {
      VertexId v = frontier.front();
      frontier.pop_front();
      const auto& out = arcs_[static_cast<size_t>(v)];
      for (size_t i = 0; i < out.size(); ++i) {
        if (out[i].capacity <= 0 || seen[static_cast<size_t>(out[i].to)]) {
          continue;
        }
        seen[static_cast<size_t>(out[i].to)] = true;
        parent[static_cast<size_t>(out[i].to)] = {v, i};
        frontier.push_back(out[i].to);
      }
    }
    if (!seen[static_cast<size_t>(target)]) {
      return 0;
    }
    // Find the bottleneck, then push.
    int bottleneck = kInfiniteCapacity;
    for (VertexId v = target; v != source;) {
      auto [pv, pi] = parent[static_cast<size_t>(v)];
      bottleneck = std::min(bottleneck, arcs_[static_cast<size_t>(pv)][pi].capacity);
      v = pv;
    }
    for (VertexId v = target; v != source;) {
      auto [pv, pi] = parent[static_cast<size_t>(v)];
      ResidualArc& arc = arcs_[static_cast<size_t>(pv)][pi];
      arc.capacity -= bottleneck;
      arcs_[static_cast<size_t>(arc.to)][arc.reverse_index].capacity += bottleneck;
      v = pv;
    }
    return bottleneck;
  }

  // Vertices reachable from `source` in the residual graph (the source side
  // of the min cut).
  std::vector<bool> SourceSide(VertexId source) const {
    std::vector<bool> seen(arcs_.size(), false);
    std::deque<VertexId> frontier;
    seen[static_cast<size_t>(source)] = true;
    frontier.push_back(source);
    while (!frontier.empty()) {
      VertexId v = frontier.front();
      frontier.pop_front();
      for (const ResidualArc& arc : arcs_[static_cast<size_t>(v)]) {
        if (arc.capacity > 0 && !seen[static_cast<size_t>(arc.to)]) {
          seen[static_cast<size_t>(arc.to)] = true;
          frontier.push_back(arc.to);
        }
      }
    }
    return seen;
  }

  // Flow on each original edge = original capacity minus residual capacity.
  std::vector<int> EdgeFlow(const Digraph& graph, const std::vector<int>& capacity) const {
    std::vector<int> flow(static_cast<size_t>(graph.EdgeCount()), 0);
    for (const auto& bucket : arcs_) {
      for (const ResidualArc& arc : bucket) {
        if (arc.original != kInvalidEdge) {
          flow[static_cast<size_t>(arc.original)] =
              capacity[static_cast<size_t>(arc.original)] - arc.capacity;
        }
      }
    }
    return flow;
  }

 private:
  std::vector<std::vector<ResidualArc>> arcs_;
};

}  // namespace

MaxFlowResult ComputeMaxFlow(const Digraph& graph, VertexId source, VertexId target,
                             const std::vector<int>& capacity) {
  assert(capacity.size() == static_cast<size_t>(graph.EdgeCount()));
  MaxFlowResult result;
  if (source == target) {
    result.edge_flow.assign(static_cast<size_t>(graph.EdgeCount()), 0);
    return result;
  }
  ResidualGraph residual(graph, capacity);
  while (true) {
    int pushed = residual.Augment(source, target);
    if (pushed == 0) {
      break;
    }
    result.value += pushed;
  }
  result.edge_flow = residual.EdgeFlow(graph, capacity);
  std::vector<bool> source_side = residual.SourceSide(source);
  for (EdgeId id = 0; id < graph.EdgeCount(); ++id) {
    if (graph.IsEdgeRemoved(id)) {
      continue;
    }
    const DigraphEdge& edge = graph.edge(id);
    if (source_side[static_cast<size_t>(edge.from)] &&
        !source_side[static_cast<size_t>(edge.to)] &&
        capacity[static_cast<size_t>(id)] < kInfiniteCapacity) {
      result.min_cut_edges.push_back(id);
    }
  }
  return result;
}

MaxFlowResult ComputeUnitMaxFlow(const Digraph& graph, VertexId source, VertexId target) {
  std::vector<int> capacity(static_cast<size_t>(graph.EdgeCount()), 1);
  return ComputeMaxFlow(graph, source, target, capacity);
}

std::vector<std::vector<EdgeId>> DecomposeFlowPaths(const Digraph& graph, VertexId source,
                                                    VertexId target,
                                                    const MaxFlowResult& result) {
  std::vector<int> remaining = result.edge_flow;
  std::vector<std::vector<EdgeId>> paths;
  for (int p = 0; p < result.value; ++p) {
    std::vector<EdgeId> path;
    VertexId v = source;
    // Walk flow greedily; each step consumes one unit on some out-edge.
    while (v != target) {
      bool advanced = false;
      for (EdgeId id : graph.OutEdges(v)) {
        if (remaining[static_cast<size_t>(id)] > 0) {
          remaining[static_cast<size_t>(id)] -= 1;
          path.push_back(id);
          v = graph.edge(id).to;
          advanced = true;
          break;
        }
      }
      if (!advanced) {
        break;  // Flow had a cycle not on a source->target path; abandon.
      }
    }
    if (v == target) {
      paths.push_back(std::move(path));
    }
  }
  return paths;
}

}  // namespace cpr
