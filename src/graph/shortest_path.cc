#include "graph/shortest_path.h"

#include <algorithm>
#include <queue>

namespace cpr {

ShortestPathTree DijkstraFrom(const Digraph& graph, VertexId source) {
  const size_t n = static_cast<size_t>(graph.VertexCount());
  ShortestPathTree tree;
  tree.distance.assign(n, kUnreachable);
  tree.parent_edge.assign(n, kInvalidEdge);
  tree.distance[static_cast<size_t>(source)] = 0.0;

  using Entry = std::pair<double, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  queue.push({0.0, source});

  while (!queue.empty()) {
    auto [dist, v] = queue.top();
    queue.pop();
    if (dist > tree.distance[static_cast<size_t>(v)]) {
      continue;  // Stale entry.
    }
    for (EdgeId id : graph.OutEdges(v)) {
      const DigraphEdge& edge = graph.edge(id);
      double candidate = dist + edge.weight;
      size_t to = static_cast<size_t>(edge.to);
      if (candidate < tree.distance[to] ||
          (candidate == tree.distance[to] && tree.parent_edge[to] != kInvalidEdge &&
           id < tree.parent_edge[to])) {
        tree.distance[to] = candidate;
        tree.parent_edge[to] = id;
        queue.push({candidate, edge.to});
      }
    }
  }
  return tree;
}

std::vector<EdgeId> ShortestPathEdges(const Digraph& graph, VertexId source, VertexId target) {
  ShortestPathTree tree = DijkstraFrom(graph, source);
  std::vector<EdgeId> path;
  if (!tree.Reached(target) || source == target) {
    return path;
  }
  VertexId v = target;
  while (v != source) {
    EdgeId id = tree.parent_edge[static_cast<size_t>(v)];
    path.push_back(id);
    v = graph.edge(id).from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<VertexId> ShortestPathVertices(const Digraph& graph, VertexId source,
                                           VertexId target) {
  std::vector<EdgeId> edges = ShortestPathEdges(graph, source, target);
  std::vector<VertexId> vertices;
  if (edges.empty()) {
    if (source == target) {
      vertices.push_back(source);
    }
    return vertices;
  }
  vertices.push_back(source);
  for (EdgeId id : edges) {
    vertices.push_back(graph.edge(id).to);
  }
  return vertices;
}

}  // namespace cpr
