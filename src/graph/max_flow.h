// Edmonds-Karp max-flow / min-cut over a Digraph.
//
// ARC verifies "reachable under < k link failures" (PC3) by computing the
// max-flow of the traffic class's ETG where every inter-device edge has
// capacity 1 and intra-device edges are effectively uncapacitated; by
// Menger's theorem the flow value equals the number of link-disjoint paths.
// The min-cut side is used when repairing PC1/PC2 with graph algorithms and
// in tests as the dual witness.

#ifndef CPR_SRC_GRAPH_MAX_FLOW_H_
#define CPR_SRC_GRAPH_MAX_FLOW_H_

#include <vector>

#include "graph/digraph.h"

namespace cpr {

// Capacity assigned to "uncapacitated" edges; large enough to never bind in
// any graph CPR builds (ETGs have < 10^6 edges).
inline constexpr int kInfiniteCapacity = 1 << 28;

struct MaxFlowResult {
  int value = 0;
  // Flow carried by each edge id (0 for removed edges).
  std::vector<int> edge_flow;
  // Edges crossing the minimum s-t cut (from the source side to the sink
  // side), restricted to edges with finite capacity.
  std::vector<EdgeId> min_cut_edges;
};

// Computes max-flow from `source` to `target`. `capacity[e]` gives the
// capacity of edge e; it must have size graph.EdgeCount().
MaxFlowResult ComputeMaxFlow(const Digraph& graph, VertexId source, VertexId target,
                             const std::vector<int>& capacity);

// Convenience: capacity 1 on every active edge.
MaxFlowResult ComputeUnitMaxFlow(const Digraph& graph, VertexId source, VertexId target);

// Decomposes a flow into `result.value` source->target paths (each a
// sequence of edge ids). Paths are edge-disjoint with respect to edges whose
// flow is 1.
std::vector<std::vector<EdgeId>> DecomposeFlowPaths(const Digraph& graph, VertexId source,
                                                    VertexId target,
                                                    const MaxFlowResult& result);

}  // namespace cpr

#endif  // CPR_SRC_GRAPH_MAX_FLOW_H_
