// Reverse-unit-propagation proof checker.
//
// Replays a ProofStream forward, maintaining its own clause database and
// root-level assignment (two-watched-literal propagation, shared nothing
// with the solver):
//
//   kInput   added as an axiom; root unit propagation runs to fixpoint.
//   kLemma   must pass the RUP test first: assert the negation of every
//            literal, propagate, and demand a conflict. A lemma whose
//            negation is already contradicted at root passes immediately;
//            the empty lemma passes only when the database is already in
//            root conflict. Validated lemmas join the database.
//   kDelete  retires the active clause with the same literal set (matched
//            as a set — the solver's watch normalization reorders literals
//            in place). Lemma-added clauses are preferred over same-content
//            inputs so an input inventory is never silently weakened by a
//            learnt-clause deletion.
//
// proven_unsat() becomes true — and stays true — once a root conflict is
// derived; a validated proof of UNSAT is exactly a replay that ends with
// proven_unsat() set. All literals use smt/literal.h coordinates.
//
// Ingest is the hot path: a cold proof is overwhelmingly input events, so
// clauses are stored in one flat literal array, deduplication and tautology
// detection use a seen-mark array instead of sorting, and the content index
// that backs kDelete matching (an order-independent hash over the literal
// set) is built lazily on the first delete — a delete-free proof, the
// common case, never pays for it.

#ifndef CPR_SRC_CERTIFY_RUP_H_
#define CPR_SRC_CERTIFY_RUP_H_

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "smt/literal.h"
#include "smt/proof_log.h"

namespace cpr::certify {

class RupChecker {
 public:
  // All return false on failure and record a description in error(); the
  // checker is then poisoned (every later call fails) so a caller can test
  // the final Apply result alone.
  bool AddInput(std::span<const Lit> clause);
  bool AddLemma(std::span<const Lit> clause);
  bool Delete(std::span<const Lit> clause);
  bool Apply(ProofEventKind kind, std::span<const Lit> lits);

  // Initializer-list overloads so call sites can pass braced literal lists
  // (a braced list does not convert to std::span in C++20).
  bool AddInput(std::initializer_list<Lit> clause) {
    return AddInput(std::span<const Lit>(clause.begin(), clause.size()));
  }
  bool AddLemma(std::initializer_list<Lit> clause) {
    return AddLemma(std::span<const Lit>(clause.begin(), clause.size()));
  }
  bool Delete(std::initializer_list<Lit> clause) {
    return Delete(std::span<const Lit>(clause.begin(), clause.size()));
  }

  bool proven_unsat() const { return proven_unsat_; }
  int64_t lemmas_checked() const { return lemmas_checked_; }
  const std::string& error() const { return error_; }

 private:
  struct CheckClause {
    uint32_t offset = 0;  // Into lit_data_.
    uint32_t size = 0;
    bool active = true;
    bool input = false;
    bool tautology = false;  // Never propagates; kept for delete-matching.
  };

  bool Fail(const std::string& what);
  void EnsureVar(BoolVar var);
  LBool Value(Lit lit) const;
  void Enqueue(Lit lit);
  // Unit propagation from the current queue head. Returns false on conflict.
  bool Propagate();
  // Copies `clause` into scratch_ dropping duplicate literals; sets
  // *tautology when it contains a complementary pair. False on an invalid
  // (negative-code) literal.
  bool PrepareScratch(std::span<const Lit> clause, bool* tautology);
  // Adds scratch_ to the database and hooks watches / propagates.
  bool Add(bool tautology, bool input);
  // Order-independent literal-set hash; exact match is re-verified.
  uint64_t ContentHash(const Lit* lits, size_t count) const;
  bool SameContentAsScratch(const CheckClause& clause);
  void EnsureDeleteIndex();

  std::vector<CheckClause> clauses_;
  std::vector<Lit> lit_data_;  // All clause literals, contiguous.
  std::vector<Lit> scratch_;
  std::vector<uint8_t> seen_;  // Indexed by literal code; always zero between calls.
  std::unordered_map<uint64_t, std::vector<uint32_t>> by_content_;
  bool delete_index_built_ = false;
  std::vector<std::vector<size_t>> watches_;  // Indexed by literal code.
  std::vector<LBool> assigns_;
  std::vector<Lit> trail_;
  size_t head_ = 0;
  bool proven_unsat_ = false;
  bool failed_ = false;
  int64_t lemmas_checked_ = 0;
  std::string error_;
};

}  // namespace cpr::certify

#endif  // CPR_SRC_CERTIFY_RUP_H_
