// Certificate persistence: JSON artifacts for offline re-checking.
//
// A certificate serializes to a single JSON document (schema_version 1) with
// DIMACS-style signed literals (var+1, negated => negative) so artifacts are
// inspectable with standard tooling. WriteCertificateFile persists with the
// write-temp + fsync + rename discipline shared with the daemon checkpoint
// (netbase/durable_file.h) — an artifact either exists completely or not at
// all. CheckArtifactDir drives `cpr certify <dir>`: parse every *.cert.json
// and run the bundled checker over each, no solver involved.

#ifndef CPR_SRC_CERTIFY_ARTIFACT_H_
#define CPR_SRC_CERTIFY_ARTIFACT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "certify/certify.h"
#include "netbase/result.h"
#include "smt/certificate.h"

namespace cpr::certify {

// JSON document (no trailing newline) for the certificate.
std::string SerializeCertificate(const Certificate& cert);

// Inverse of SerializeCertificate. Rejects unknown schema versions and
// malformed literals; on failure returns false with a description in *error.
bool ParseCertificate(const std::string& json, Certificate* out,
                      std::string* error);

// Durable write of the serialized certificate (plus trailing newline).
Status WriteCertificateFile(const std::string& path, const Certificate& cert);

// One artifact's offline verdict.
struct ArtifactCheck {
  std::string file;  // Basename within the directory.
  std::string kind;
  std::string claim;
  bool ok = false;
  std::string message;  // Parse or check failure, empty when ok.
  int64_t lemmas = 0;
};

// Parses and checks every *.cert.json directly under `dir` (sorted by name).
// A missing or unreadable directory is an Error; individual artifact
// failures are reported per-entry, not as an overall error.
Result<std::vector<ArtifactCheck>> CheckArtifactDir(const std::string& dir);

}  // namespace cpr::certify

#endif  // CPR_SRC_CERTIFY_ARTIFACT_H_
