#include "certify/rup.h"

#include <cstddef>

namespace cpr::certify {

bool RupChecker::Fail(const std::string& what) {
  if (!failed_) {
    failed_ = true;
    error_ = what;
  }
  return false;
}

void RupChecker::EnsureVar(BoolVar var) {
  size_t need = static_cast<size_t>(var) + 1;
  if (assigns_.size() < need) {
    assigns_.resize(need, LBool::kUndef);
    watches_.resize(need * 2);
    seen_.resize(need * 2, 0);
  }
}

LBool RupChecker::Value(Lit lit) const {
  LBool v = assigns_[static_cast<size_t>(lit.var())];
  return lit.negated() ? Negate(v) : v;
}

void RupChecker::Enqueue(Lit lit) {
  assigns_[static_cast<size_t>(lit.var())] = lit.negated() ? LBool::kFalse : LBool::kTrue;
  trail_.push_back(lit);
}

bool RupChecker::Propagate() {
  while (head_ < trail_.size()) {
    Lit p = trail_[head_++];
    std::vector<size_t>& watch_list = watches_[static_cast<size_t>((~p).code())];
    size_t keep = 0;
    for (size_t i = 0; i < watch_list.size(); ++i) {
      size_t ref = watch_list[i];
      CheckClause& data = clauses_[ref];
      if (!data.active) {
        continue;  // Deleted; unhook lazily.
      }
      Lit* lits = lit_data_.data() + data.offset;
      if (lits[0] == ~p) {
        std::swap(lits[0], lits[1]);
      }
      if (Value(lits[0]) == LBool::kTrue) {
        watch_list[keep++] = ref;
        continue;
      }
      bool moved = false;
      for (size_t j = 2; j < data.size; ++j) {
        if (Value(lits[j]) != LBool::kFalse) {
          std::swap(lits[1], lits[j]);
          watches_[static_cast<size_t>(lits[1].code())].push_back(ref);
          moved = true;
          break;
        }
      }
      if (moved) {
        continue;
      }
      watch_list[keep++] = ref;
      if (Value(lits[0]) == LBool::kFalse) {
        for (size_t j = i + 1; j < watch_list.size(); ++j) {
          watch_list[keep++] = watch_list[j];
        }
        watch_list.resize(keep);
        head_ = trail_.size();
        return false;
      }
      Enqueue(lits[0]);
    }
    watch_list.resize(keep);
  }
  return true;
}

bool RupChecker::PrepareScratch(std::span<const Lit> clause, bool* tautology) {
  scratch_.clear();
  *tautology = false;
  for (Lit lit : clause) {
    int32_t code = lit.code();
    if (code < 0) {
      return false;
    }
    EnsureVar(lit.var());
    uint8_t& mark = seen_[static_cast<size_t>(code)];
    if (mark != 0) {
      continue;  // Duplicate literal.
    }
    if (seen_[static_cast<size_t>(code ^ 1)] != 0) {
      *tautology = true;  // Complementary pair; keep both for delete-matching.
    }
    mark = 1;
    scratch_.push_back(lit);
  }
  for (Lit lit : scratch_) {
    seen_[static_cast<size_t>(lit.code())] = 0;
  }
  return true;
}

uint64_t RupChecker::ContentHash(const Lit* lits, size_t count) const {
  // splitmix64 per literal, summed: the sum is order-independent, which is
  // required because the watch machinery reorders stored literals in place.
  uint64_t hash = 0x243f6a8885a308d3ULL + count;
  for (size_t i = 0; i < count; ++i) {
    uint64_t z = static_cast<uint64_t>(static_cast<uint32_t>(lits[i].code())) +
                 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    hash += z ^ (z >> 31);
  }
  return hash;
}

bool RupChecker::SameContentAsScratch(const CheckClause& clause) {
  if (clause.size != scratch_.size()) {
    return false;
  }
  const Lit* lits = lit_data_.data() + clause.offset;
  for (size_t i = 0; i < clause.size; ++i) {
    seen_[static_cast<size_t>(lits[i].code())] = 1;
  }
  bool same = true;
  for (Lit lit : scratch_) {
    if (seen_[static_cast<size_t>(lit.code())] == 0) {
      same = false;
      break;
    }
  }
  for (size_t i = 0; i < clause.size; ++i) {
    seen_[static_cast<size_t>(lits[i].code())] = 0;
  }
  // Both sides are duplicate-free, so equal size + set inclusion is set
  // equality.
  return same;
}

void RupChecker::EnsureDeleteIndex() {
  if (delete_index_built_) {
    return;
  }
  delete_index_built_ = true;
  by_content_.reserve(clauses_.size() * 2);
  for (uint32_t id = 0; id < clauses_.size(); ++id) {
    const CheckClause& clause = clauses_[id];
    by_content_[ContentHash(lit_data_.data() + clause.offset, clause.size)]
        .push_back(id);
  }
}

bool RupChecker::Add(bool tautology, bool input) {
  const uint32_t id = static_cast<uint32_t>(clauses_.size());
  const uint32_t offset = static_cast<uint32_t>(lit_data_.size());
  lit_data_.insert(lit_data_.end(), scratch_.begin(), scratch_.end());
  clauses_.push_back(CheckClause{offset, static_cast<uint32_t>(scratch_.size()),
                                 true, input, tautology});
  if (delete_index_built_) {
    by_content_[ContentHash(lit_data_.data() + offset, scratch_.size())]
        .push_back(id);
  }
  if (tautology || proven_unsat_) {
    // Tautologies never propagate; once the database is in root conflict no
    // further bookkeeping can change the verdict.
    return true;
  }
  Lit* lits = lit_data_.data() + offset;
  const size_t count = clauses_[id].size;
  size_t free_pos[2];
  size_t free_count = 0;
  for (size_t pos = 0; pos < count; ++pos) {
    LBool v = Value(lits[pos]);
    if (v == LBool::kTrue) {
      return true;  // Root-satisfied forever; no watches needed.
    }
    if (v == LBool::kUndef && free_count < 2) {
      free_pos[free_count++] = pos;
    }
  }
  if (free_count == 0) {
    proven_unsat_ = true;
    return true;
  }
  if (free_count == 1) {
    Enqueue(lits[free_pos[0]]);
    if (!Propagate()) {
      proven_unsat_ = true;
    }
    return true;
  }
  // free_pos ascends, so free_pos[1] >= 1 and the first swap cannot move
  // the second free literal.
  std::swap(lits[0], lits[free_pos[0]]);
  std::swap(lits[1], lits[free_pos[1]]);
  watches_[static_cast<size_t>(lits[0].code())].push_back(id);
  watches_[static_cast<size_t>(lits[1].code())].push_back(id);
  return true;
}

bool RupChecker::AddInput(std::span<const Lit> clause) {
  if (failed_) {
    return false;
  }
  bool tautology = false;
  if (!PrepareScratch(clause, &tautology)) {
    return Fail("invalid literal in clause");
  }
  return Add(tautology, /*input=*/true);
}

bool RupChecker::AddLemma(std::span<const Lit> clause) {
  if (failed_) {
    return false;
  }
  bool tautology = false;
  if (!PrepareScratch(clause, &tautology)) {
    return Fail("invalid literal in lemma");
  }
  ++lemmas_checked_;
  if (!proven_unsat_ && !tautology) {
    // The RUP test: assume the negation of every literal and propagate; the
    // lemma follows iff that derives a conflict. Temporary assignments are
    // rolled back to the root trail either way.
    size_t root = trail_.size();
    bool conflict = false;
    for (Lit lit : scratch_) {
      LBool v = Value(lit);
      if (v == LBool::kTrue) {
        conflict = true;  // The negation is already contradicted.
        break;
      }
      if (v == LBool::kUndef) {
        Enqueue(~lit);
      }
    }
    if (!conflict) {
      conflict = !Propagate();
    }
    for (size_t i = trail_.size(); i-- > root;) {
      assigns_[static_cast<size_t>(trail_[i].var())] = LBool::kUndef;
    }
    trail_.resize(root);
    head_ = root;
    if (!conflict) {
      return Fail("lemma is not RUP");
    }
  }
  return Add(tautology, /*input=*/false);
}

bool RupChecker::Delete(std::span<const Lit> clause) {
  if (failed_) {
    return false;
  }
  bool tautology = false;
  if (!PrepareScratch(clause, &tautology)) {
    return Fail("delete of a clause not in the database");
  }
  EnsureDeleteIndex();
  const size_t none = clauses_.size();
  size_t best = none;
  auto it = by_content_.find(ContentHash(scratch_.data(), scratch_.size()));
  if (it != by_content_.end()) {
    for (size_t id : it->second) {
      if (!clauses_[id].active || !SameContentAsScratch(clauses_[id])) {
        continue;
      }
      // Prefer retiring a lemma over a same-content input: the solver only
      // deletes learnt clauses, and an input inventory must never be
      // weakened by a learnt deletion. (Deleting redundant lemmas keeps
      // root facts sound: a lemma is entailed by the inputs, so removing it
      // never removes a consequence.)
      if (best == none || (clauses_[best].input && !clauses_[id].input)) {
        best = id;
      }
    }
  }
  if (best == none) {
    return Fail("delete of a clause not in the database");
  }
  clauses_[best].active = false;
  return true;
}

bool RupChecker::Apply(ProofEventKind kind, std::span<const Lit> lits) {
  switch (kind) {
    case ProofEventKind::kInput:
      return AddInput(lits);
    case ProofEventKind::kLemma:
      return AddLemma(lits);
    case ProofEventKind::kDelete:
      return Delete(lits);
  }
  return Fail("unknown proof event kind");
}

}  // namespace cpr::certify
