#include "certify/artifact.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>

#include "core/schema_versions.h"
#include "netbase/durable_file.h"
#include "obs/json.h"

namespace cpr::certify {

namespace {

namespace fs = std::filesystem;

constexpr int64_t kSchemaVersion = kCertifySchemaVersion;

// DIMACS-style signed literal: var+1, negative when negated; 0 encodes the
// undefined literal (unit-soft selectors are always defined, but the format
// must round-trip any struct state).
int64_t LitToDimacs(Lit lit) {
  if (lit == kUndefLit) {
    return 0;
  }
  int64_t var = static_cast<int64_t>(lit.var()) + 1;
  return lit.negated() ? -var : var;
}

bool DimacsToLit(int64_t dimacs, Lit* out) {
  if (dimacs == 0) {
    *out = kUndefLit;
    return true;
  }
  int64_t var = dimacs < 0 ? -dimacs : dimacs;
  if (var > static_cast<int64_t>(INT32_MAX / 2)) {
    return false;
  }
  *out = Lit(static_cast<BoolVar>(var - 1), dimacs < 0);
  return true;
}

void WriteClause(obs::JsonWriter* w, const Clause& clause) {
  w->BeginArray();
  for (Lit lit : clause) {
    w->Int(LitToDimacs(lit));
  }
  w->EndArray();
}

// Events serialize as [kindCode, lit, lit, ...] — compact, and the kind code
// matches ProofEventKind's underlying value.
void WriteEvents(obs::JsonWriter* w, const ProofStream& events) {
  w->BeginArray();
  for (size_t i = 0; i < events.size(); ++i) {
    w->BeginArray();
    w->Int(static_cast<int64_t>(events.kind(i)));
    for (Lit lit : events.lits(i)) {
      w->Int(LitToDimacs(lit));
    }
    w->EndArray();
  }
  w->EndArray();
}

bool ParseClause(const obs::JsonValue& value, Clause* out, std::string* error) {
  if (value.type != obs::JsonValue::Type::kArray) {
    *error = "clause is not an array";
    return false;
  }
  out->clear();
  out->reserve(value.items.size());
  for (const obs::JsonValue& item : value.items) {
    Lit lit = kUndefLit;
    if (!item.IsNumber() || !DimacsToLit(item.AsInt(), &lit)) {
      *error = "malformed literal";
      return false;
    }
    out->push_back(lit);
  }
  return true;
}

bool ParseEvents(const obs::JsonValue& value, ProofStream* out,
                 std::string* error) {
  if (value.type != obs::JsonValue::Type::kArray) {
    *error = "events is not an array";
    return false;
  }
  out->Clear();
  out->Reserve(value.items.size(), 0);
  Clause lits;
  for (const obs::JsonValue& entry : value.items) {
    if (entry.type != obs::JsonValue::Type::kArray || entry.items.empty() ||
        !entry.items[0].IsNumber()) {
      *error = "malformed proof event";
      return false;
    }
    int64_t kind = entry.items[0].AsInt();
    if (kind < 0 || kind > 2) {
      *error = "unknown proof event kind";
      return false;
    }
    lits.clear();
    lits.reserve(entry.items.size() - 1);
    for (size_t i = 1; i < entry.items.size(); ++i) {
      Lit lit = kUndefLit;
      if (!entry.items[i].IsNumber() ||
          !DimacsToLit(entry.items[i].AsInt(), &lit) || lit == kUndefLit) {
        *error = "malformed literal in proof event";
        return false;
      }
      lits.push_back(lit);
    }
    out->Append(static_cast<ProofEventKind>(kind), lits);
  }
  return true;
}

bool ParseIntArray(const obs::JsonValue& value, std::vector<int64_t>* out,
                   std::string* error) {
  if (value.type != obs::JsonValue::Type::kArray) {
    *error = "expected an array of integers";
    return false;
  }
  out->clear();
  out->reserve(value.items.size());
  for (const obs::JsonValue& item : value.items) {
    if (!item.IsNumber()) {
      *error = "expected an integer";
      return false;
    }
    out->push_back(item.AsInt());
  }
  return true;
}

int64_t FindInt(const obs::JsonValue& object, std::string_view key,
                int64_t fallback) {
  const obs::JsonValue* v = object.Find(key);
  return v != nullptr ? v->AsInt(fallback) : fallback;
}

std::string FindString(const obs::JsonValue& object, std::string_view key) {
  const obs::JsonValue* v = object.Find(key);
  return v != nullptr && v->type == obs::JsonValue::Type::kString ? v->string
                                                                  : std::string();
}

bool FindBool(const obs::JsonValue& object, std::string_view key, bool fallback) {
  const obs::JsonValue* v = object.Find(key);
  return v != nullptr && v->type == obs::JsonValue::Type::kBool ? v->bool_value
                                                                : fallback;
}

}  // namespace

std::string SerializeCertificate(const Certificate& cert) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(kSchemaVersion);
  w.Key("kind").String(CertificateKindName(cert.kind));
  w.Key("claim").String(CertificateClaimName(cert.claim));
  w.Key("backend").String(cert.backend);
  w.Key("problem").String(cert.problem);
  w.Key("cost").Int(cert.cost);
  w.Key("cold").Bool(cert.cold);
  if (cert.kind == Certificate::Kind::kClausal) {
    w.Key("baseline_vars").Int(static_cast<int64_t>(cert.baseline_vars));
    w.Key("baseline_events").Int(cert.baseline_events);
    w.Key("events");
    WriteEvents(&w, cert.events);
    w.Key("softs").BeginArray();
    for (const CertSoft& soft : cert.softs) {
      w.BeginObject();
      w.Key("clause");
      WriteClause(&w, soft.clause);
      w.Key("weight").Int(soft.weight);
      w.Key("selector").Int(LitToDimacs(soft.selector));
      w.EndObject();
    }
    w.EndArray();
    w.Key("iterations").BeginArray();
    for (const CertIteration& iteration : cert.iterations) {
      w.BeginObject();
      w.Key("members").BeginArray();
      for (int64_t member : iteration.members) {
        w.Int(member);
      }
      w.EndArray();
      w.Key("core_event").Int(iteration.core_event);
      w.EndObject();
    }
    w.EndArray();
    std::string model;
    model.reserve(cert.model.size());
    for (bool bit : cert.model) {
      model.push_back(bit ? '1' : '0');
    }
    w.Key("model").String(model);
    if (!cert.core_events.empty() || !cert.core_assumptions.empty()) {
      w.Key("core").BeginObject();
      w.Key("events");
      WriteEvents(&w, cert.core_events);
      w.Key("assumptions").BeginArray();
      for (Lit lit : cert.core_assumptions) {
        w.Int(LitToDimacs(lit));
      }
      w.EndArray();
      w.Key("hards").BeginArray();
      for (const std::vector<int64_t>& hards : cert.core_hards) {
        w.BeginArray();
        for (int64_t hard : hards) {
          w.Int(hard);
        }
        w.EndArray();
      }
      w.EndArray();
      w.Key("lits").BeginArray();
      for (Lit lit : cert.core_lits) {
        w.Int(LitToDimacs(lit));
      }
      w.EndArray();
      w.Key("core_event").Int(cert.core_event);
      w.Key("reported").BeginArray();
      for (int64_t hard : cert.reported_core) {
        w.Int(hard);
      }
      w.EndArray();
      w.EndObject();
    }
  }
  w.Key("model_only").BeginObject();
  w.Key("hards_total").Int(cert.hards_total);
  w.Key("hards_violated").Int(cert.hards_violated);
  w.Key("model_cost").Int(cert.model_cost);
  w.Key("core_tracked").Bool(cert.core_tracked);
  w.EndObject();
  w.EndObject();
  return w.str();
}

bool ParseCertificate(const std::string& json, Certificate* out,
                      std::string* error) {
  obs::JsonValue root;
  std::string parse_error;
  if (!obs::ParseJson(json, &root, &parse_error)) {
    *error = "invalid JSON: " + parse_error;
    return false;
  }
  if (root.type != obs::JsonValue::Type::kObject) {
    *error = "certificate is not a JSON object";
    return false;
  }
  if (FindInt(root, "schema_version", -1) != kSchemaVersion) {
    *error = "unsupported certificate schema version";
    return false;
  }
  *out = Certificate{};
  const std::string kind = FindString(root, "kind");
  if (kind == "clausal") {
    out->kind = Certificate::Kind::kClausal;
  } else if (kind == "model-only") {
    out->kind = Certificate::Kind::kModelOnly;
  } else {
    *error = "unknown certificate kind";
    return false;
  }
  const std::string claim = FindString(root, "claim");
  if (claim == "optimal") {
    out->claim = Certificate::Claim::kOptimal;
  } else if (claim == "unsat") {
    out->claim = Certificate::Claim::kUnsat;
  } else {
    *error = "unknown certificate claim";
    return false;
  }
  out->backend = FindString(root, "backend");
  out->problem = FindString(root, "problem");
  out->cost = FindInt(root, "cost", 0);
  out->cold = FindBool(root, "cold", true);

  if (out->kind == Certificate::Kind::kClausal) {
    out->baseline_vars = static_cast<int32_t>(FindInt(root, "baseline_vars", 0));
    out->baseline_events = FindInt(root, "baseline_events", 0);
    const obs::JsonValue* events = root.Find("events");
    if (events == nullptr || !ParseEvents(*events, &out->events, error)) {
      return false;
    }
    if (const obs::JsonValue* softs = root.Find("softs"); softs != nullptr) {
      if (softs->type != obs::JsonValue::Type::kArray) {
        *error = "softs is not an array";
        return false;
      }
      for (const obs::JsonValue& entry : softs->items) {
        const obs::JsonValue* clause = entry.Find("clause");
        CertSoft soft;
        if (clause == nullptr || !ParseClause(*clause, &soft.clause, error)) {
          return false;
        }
        soft.weight = FindInt(entry, "weight", 0);
        if (!DimacsToLit(FindInt(entry, "selector", 0), &soft.selector)) {
          *error = "malformed soft selector";
          return false;
        }
        out->softs.push_back(std::move(soft));
      }
    }
    if (const obs::JsonValue* iters = root.Find("iterations"); iters != nullptr) {
      if (iters->type != obs::JsonValue::Type::kArray) {
        *error = "iterations is not an array";
        return false;
      }
      for (const obs::JsonValue& entry : iters->items) {
        CertIteration iteration;
        const obs::JsonValue* members = entry.Find("members");
        if (members == nullptr ||
            !ParseIntArray(*members, &iteration.members, error)) {
          return false;
        }
        iteration.core_event = FindInt(entry, "core_event", -1);
        out->iterations.push_back(std::move(iteration));
      }
    }
    const std::string model = FindString(root, "model");
    out->model.reserve(model.size());
    for (char bit : model) {
      if (bit != '0' && bit != '1') {
        *error = "malformed model bitstring";
        return false;
      }
      out->model.push_back(bit == '1');
    }
    if (const obs::JsonValue* core = root.Find("core"); core != nullptr) {
      const obs::JsonValue* core_events = core->Find("events");
      if (core_events == nullptr ||
          !ParseEvents(*core_events, &out->core_events, error)) {
        return false;
      }
      std::vector<int64_t> raw;
      if (const obs::JsonValue* assumptions = core->Find("assumptions");
          assumptions != nullptr) {
        if (!ParseIntArray(*assumptions, &raw, error)) {
          return false;
        }
        for (int64_t dimacs : raw) {
          Lit lit = kUndefLit;
          if (!DimacsToLit(dimacs, &lit) || lit == kUndefLit) {
            *error = "malformed core assumption";
            return false;
          }
          out->core_assumptions.push_back(lit);
        }
      }
      if (const obs::JsonValue* hards = core->Find("hards"); hards != nullptr) {
        if (hards->type != obs::JsonValue::Type::kArray) {
          *error = "core hards is not an array";
          return false;
        }
        for (const obs::JsonValue& entry : hards->items) {
          std::vector<int64_t> indices;
          if (!ParseIntArray(entry, &indices, error)) {
            return false;
          }
          out->core_hards.push_back(std::move(indices));
        }
      }
      if (const obs::JsonValue* lits = core->Find("lits"); lits != nullptr) {
        if (!ParseIntArray(*lits, &raw, error)) {
          return false;
        }
        for (int64_t dimacs : raw) {
          Lit lit = kUndefLit;
          if (!DimacsToLit(dimacs, &lit) || lit == kUndefLit) {
            *error = "malformed core literal";
            return false;
          }
          out->core_lits.push_back(lit);
        }
      }
      out->core_event = FindInt(*core, "core_event", -1);
      if (const obs::JsonValue* reported = core->Find("reported");
          reported != nullptr &&
          !ParseIntArray(*reported, &out->reported_core, error)) {
        return false;
      }
    }
  }
  if (const obs::JsonValue* model_only = root.Find("model_only");
      model_only != nullptr) {
    out->hards_total = FindInt(*model_only, "hards_total", 0);
    out->hards_violated = FindInt(*model_only, "hards_violated", 0);
    out->model_cost = FindInt(*model_only, "model_cost", 0);
    out->core_tracked = FindBool(*model_only, "core_tracked", true);
  }
  return true;
}

Status WriteCertificateFile(const std::string& path, const Certificate& cert) {
  return WriteFileDurably(path, SerializeCertificate(cert) + "\n");
}

Result<std::vector<ArtifactCheck>> CheckArtifactDir(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Error("not a directory: " + dir);
  }
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() &&
        entry.path().filename().string().ends_with(".cert.json")) {
      files.push_back(entry.path());
    }
  }
  if (ec) {
    return Error("cannot read directory " + dir + ": " + ec.message());
  }
  std::sort(files.begin(), files.end());
  std::vector<ArtifactCheck> checks;
  checks.reserve(files.size());
  for (const fs::path& path : files) {
    ArtifactCheck check;
    check.file = path.filename().string();
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in.good() && !in.eof()) {
      check.message = "cannot read file";
      checks.push_back(std::move(check));
      continue;
    }
    Certificate cert;
    std::string error;
    if (!ParseCertificate(buffer.str(), &cert, &error)) {
      check.message = error;
      checks.push_back(std::move(check));
      continue;
    }
    check.kind = CertificateKindName(cert.kind);
    check.claim = CertificateClaimName(cert.claim);
    CheckResult result = CheckCertificate(cert);
    check.ok = result.ok;
    check.message = result.message;
    check.lemmas = result.lemmas;
    checks.push_back(std::move(check));
  }
  return checks;
}

}  // namespace cpr::certify
