// cpr::certify — independent certificate checking for MaxSMT results.
//
// The solvers *claim*; this module *checks*, sharing no state with the
// search. Three entry points:
//
//   CheckCertificate     offline, CNF-level: replays a certificate's proof
//                        events through the bundled RUP checker (rup.h),
//                        validates UNSAT conclusions and assumption cores,
//                        and replays the Fu-Malik transformation to confirm
//                        optimality lower bounds. Needs nothing but the
//                        certificate — this is what `cpr certify <dir>` runs
//                        over persisted artifacts.
//
//   CheckCertified       in-process: everything CheckCertificate does, plus
//                        the checks that need the original ConstraintSystem —
//                        re-encoding the problem and comparing the generated
//                        clause stream against the certificate's baseline
//                        (cold solves), re-deriving the unsat-core
//                        assumption map, and re-evaluating the model
//                        arithmetic. Builds a model-only certificate for
//                        backends that attach none (Z3).
//
//   MakeCertifyingBackend  decorator that runs CheckCertified after every
//                        solve and stamps MaxSmtResult::certification.
//                        Counters: certify.checked / verified / failed /
//                        skipped / lemmas_checked.
//
// Trust model (DESIGN.md §13): a verified clausal certificate reduces trust
// in the solver to trust in ~300 lines of propagation; in-process checking
// additionally removes the encoding from the trusted base, offline checking
// of a cold artifact trusts the recorded baseline to match the problem.

#ifndef CPR_SRC_CERTIFY_CERTIFY_H_
#define CPR_SRC_CERTIFY_CERTIFY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "smt/certificate.h"
#include "solver/backend.h"
#include "solver/constraint_system.h"

namespace cpr::certify {

enum class CertifyMode {
  kOff,   // Never check; SolveCertified is not used.
  kLog,   // Log proofs and attach certificates but defer checking: results
          // ship unchecked (certification stays kNone) and the evidence is
          // audited offline (`cpr certify <dir>` over --certify-dir
          // artifacts). This is the production fast path: logging is the
          // only solve-time cost, the replay happens out of band.
  kAuto,  // Check UNSAT claims only (the cheap, high-stakes case: an
          // unchecked UNSAT silently converts "repairable" to "impossible").
  kOn,    // Check every optimal/unsat result.
};

// Parses "off" / "log" / "auto" / "on". Returns false on anything else.
bool ParseCertifyMode(std::string_view text, CertifyMode* out);
const char* CertifyModeName(CertifyMode mode);

struct CheckResult {
  bool ok = true;
  std::string message;  // First failure, empty when ok.
  int64_t lemmas = 0;   // RUP lemmas validated across all replays.
};

// Validates a certificate on its own terms (no ConstraintSystem needed).
CheckResult CheckCertificate(const Certificate& cert);

// Full in-process validation of a solve result against the system that
// produced it. Attaches a (possibly rebuilt) certificate with the
// model-side arithmetic filled in; does NOT set result->certification —
// that is the certifying backend's call.
CheckResult CheckCertified(const ConstraintSystem& system, MaxSmtResult* result);

// Wraps a backend so every Solve runs through SolveCertified + CheckCertified
// and the result carries certification == kVerified or kFailed (per `mode`).
// kOff is rejected by assertion — callers skip wrapping instead.
std::unique_ptr<MaxSmtBackend> MakeCertifyingBackend(
    std::unique_ptr<MaxSmtBackend> inner, CertifyMode mode);

}  // namespace cpr::certify

#endif  // CPR_SRC_CERTIFY_CERTIFY_H_
