// Certificate validation: RUP replay, Fu-Malik transformation replay,
// encoding cross-checks, and the certifying backend decorator.

#include <algorithm>
#include <cassert>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "certify/certify.h"
#include "certify/rup.h"
#include "obs/metrics.h"
#include "smt/cardinality.h"
#include "smt/maxsat.h"
#include "smt/sat_solver.h"
#include "solver/tseitin.h"

namespace cpr::certify {

bool ParseCertifyMode(std::string_view text, CertifyMode* out) {
  if (text == "off") {
    *out = CertifyMode::kOff;
  } else if (text == "log") {
    *out = CertifyMode::kLog;
  } else if (text == "auto") {
    *out = CertifyMode::kAuto;
  } else if (text == "on") {
    *out = CertifyMode::kOn;
  } else {
    return false;
  }
  return true;
}

const char* CertifyModeName(CertifyMode mode) {
  switch (mode) {
    case CertifyMode::kOff:
      return "off";
    case CertifyMode::kLog:
      return "log";
    case CertifyMode::kAuto:
      return "auto";
    case CertifyMode::kOn:
      return "on";
  }
  return "?";
}

namespace {

CheckResult Fail(std::string message) {
  CheckResult res;
  res.ok = false;
  res.message = std::move(message);
  return res;
}

Clause Canonical(std::span<const Lit> clause) {
  Clause out(clause.begin(), clause.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool SameCanonical(std::span<const Lit> a, std::span<const Lit> b) {
  return Canonical(a) == Canonical(b);
}

bool SameLits(std::span<const Lit> a, std::span<const Lit> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

// True when the model satisfies the clause; a literal over a variable the
// model does not cover counts as unsatisfied (the witness must be total).
bool ModelSatisfies(const std::vector<bool>& model, std::span<const Lit> clause) {
  for (Lit lit : clause) {
    size_t var = static_cast<size_t>(lit.var());
    if (var < model.size() && model[var] != lit.negated()) {
      return true;
    }
  }
  return false;
}

bool ReplayAll(const ProofStream& events, RupChecker* checker,
               CheckResult* res, const char* what) {
  for (size_t i = 0; i < events.size(); ++i) {
    if (!checker->Apply(events.kind(i), events.lits(i))) {
      *res = Fail(std::string(what) + ": " + checker->error());
      res->lemmas = checker->lemmas_checked();
      return false;
    }
  }
  return true;
}

// Validates the assumption-core sub-proof: the core solver's events check
// under RUP, the conclusion lemma is exactly the negated failed-assumption
// set, every failed assumption was actually assumed, and the hard-index
// core reported to the caller re-derives from the lit -> hards map.
CheckResult CheckCoreSubProof(const Certificate& cert) {
  CheckResult res;
  RupChecker checker;
  if (!ReplayAll(cert.core_events, &checker, &res, "core proof")) {
    return res;
  }
  res.lemmas = checker.lemmas_checked();
  if (cert.core_lits.empty()) {
    // No failed-assumption subset: the sub-proof must refute the hard
    // encoding outright.
    if (!checker.proven_unsat()) {
      return Fail("core sub-proof does not derive UNSAT");
    }
    return res;
  }
  if (cert.core_event < 0 ||
      cert.core_event != static_cast<int64_t>(cert.core_events.size()) - 1) {
    return Fail("core conclusion is not the final proof event");
  }
  const size_t conclusion = static_cast<size_t>(cert.core_event);
  if (cert.core_events.kind(conclusion) != ProofEventKind::kLemma) {
    return Fail("core conclusion is not a lemma");
  }
  Clause expected;
  expected.reserve(cert.core_lits.size());
  for (Lit lit : cert.core_lits) {
    expected.push_back(~lit);
  }
  if (!SameCanonical(cert.core_events.lits(conclusion), expected)) {
    return Fail("core conclusion does not match the failed assumptions");
  }
  // Re-derive the reported hard-index core from the proof-level core.
  std::vector<int64_t> recomputed;
  for (Lit lit : cert.core_lits) {
    size_t index = cert.core_assumptions.size();
    for (size_t i = 0; i < cert.core_assumptions.size(); ++i) {
      if (cert.core_assumptions[i] == lit) {
        index = i;
        break;
      }
    }
    if (index == cert.core_assumptions.size()) {
      return Fail("core literal was never assumed");
    }
    if (index >= cert.core_hards.size()) {
      return Fail("core assumption has no hard-constraint mapping");
    }
    for (int64_t hard : cert.core_hards[index]) {
      recomputed.push_back(hard);
    }
  }
  std::sort(recomputed.begin(), recomputed.end());
  if (recomputed != cert.reported_core) {
    return Fail("reported unsat core does not match the proof");
  }
  return res;
}

CheckResult CheckClausalUnsat(const Certificate& cert) {
  CheckResult res;
  RupChecker checker;
  if (!ReplayAll(cert.events, &checker, &res, "proof")) {
    return res;
  }
  res.lemmas = checker.lemmas_checked();
  if (!checker.proven_unsat()) {
    return Fail("proof does not derive UNSAT");
  }
  if (!cert.core_events.empty() || !cert.core_lits.empty()) {
    CheckResult core = CheckCoreSubProof(cert);
    core.lemmas += res.lemmas;
    return core;
  }
  return res;
}

// Optimality: (a) every lemma in the log is RUP, (b) the witness model
// satisfies every input clause, (c) the Fu-Malik relaxation replays exactly —
// each iteration's core lemma names its members' selectors and the input
// clauses that follow it are precisely the relaxation a scratch mirror
// generates, (d) no input clause appears after the baseline outside a
// matched relaxation batch (an unmatched input could manufacture cores and
// fake a higher bound), (e) the accumulated lower bound equals the claimed
// cost equals the witness model's cost over the entry soft inventory.
CheckResult CheckClausalOptimal(const Certificate& cert) {
  CheckResult res;
  RupChecker checker;
  if (!ReplayAll(cert.events, &checker, &res, "proof")) {
    return res;
  }
  res.lemmas = checker.lemmas_checked();

  for (size_t i = 0; i < cert.events.size(); ++i) {
    if (cert.events.kind(i) == ProofEventKind::kInput &&
        !ModelSatisfies(cert.model, cert.events.lits(i))) {
      return Fail("witness model falsifies input clause at event " +
                  std::to_string(i));
    }
  }

  if (cert.baseline_events < 0 ||
      cert.baseline_events > static_cast<int64_t>(cert.events.size())) {
    return Fail("baseline event watermark out of range");
  }
  if (cert.baseline_vars < 0) {
    return Fail("baseline var watermark out of range");
  }

  // Scratch mirror of the solver's variable space: relaxation vars and
  // selector vars allocate in lockstep with the production solve, so the
  // generated clauses must match the log literal-for-literal.
  SatSolver scratch;
  ProofLog scratch_log;
  scratch.SetProofLog(&scratch_log);
  for (int32_t i = 0; i < cert.baseline_vars; ++i) {
    scratch.NewVar();
  }

  std::vector<CertSoft> softs = cert.softs;  // Working copy; weights mutate.
  size_t cursor = static_cast<size_t>(cert.baseline_events);
  size_t scratch_cursor = 0;
  int64_t lower_bound = 0;

  for (size_t iter = 0; iter < cert.iterations.size(); ++iter) {
    const CertIteration& iteration = cert.iterations[iter];
    const std::string tag = "iteration " + std::to_string(iter);
    if (iteration.members.empty()) {
      return Fail(tag + ": empty core");
    }
    std::vector<bool> seen(softs.size(), false);
    for (int64_t member : iteration.members) {
      if (member < 0 || member >= static_cast<int64_t>(softs.size())) {
        return Fail(tag + ": core member out of range");
      }
      if (seen[static_cast<size_t>(member)]) {
        return Fail(tag + ": duplicate core member");
      }
      seen[static_cast<size_t>(member)] = true;
    }
    if (iteration.core_event < static_cast<int64_t>(cursor) ||
        iteration.core_event >= static_cast<int64_t>(cert.events.size())) {
      return Fail(tag + ": core lemma index out of order");
    }
    const size_t core_event = static_cast<size_t>(iteration.core_event);
    for (size_t i = cursor; i < core_event; ++i) {
      if (cert.events.kind(i) == ProofEventKind::kInput) {
        return Fail(tag + ": unexpected input clause during search at event " +
                    std::to_string(i));
      }
    }
    if (cert.events.kind(core_event) != ProofEventKind::kLemma) {
      return Fail(tag + ": core event is not a lemma");
    }
    Clause expected;
    int64_t wmin = 0;
    for (int64_t member : iteration.members) {
      const CertSoft& soft = softs[static_cast<size_t>(member)];
      if (soft.weight <= 0) {
        return Fail(tag + ": core member has no remaining weight");
      }
      expected.push_back(~soft.selector);
      wmin = (wmin == 0) ? soft.weight : std::min(wmin, soft.weight);
    }
    if (!SameCanonical(cert.events.lits(core_event), expected)) {
      return Fail(tag + ": core lemma does not match the member selectors");
    }
    lower_bound += wmin;

    // Mirror the relaxation: per member a relax var, a relaxed clone with a
    // fresh selector (the clone always has >= 2 literals, so MakeSelector
    // always guards it), then exactly-one over the relax vars.
    std::vector<Lit> relax_lits;
    relax_lits.reserve(iteration.members.size());
    for (int64_t member : iteration.members) {
      CertSoft& soft = softs[static_cast<size_t>(member)];
      BoolVar relax = scratch.NewVar();
      relax_lits.push_back(Lit(relax, false));
      CertSoft clone;
      clone.clause = soft.clause;
      clone.clause.push_back(Lit(relax, false));
      BoolVar selector = scratch.NewVar();
      Clause guarded = clone.clause;
      guarded.push_back(Lit(selector, true));
      scratch.AddClause(std::move(guarded));
      clone.selector = Lit(selector, false);
      clone.weight = wmin;
      soft.weight -= wmin;
      softs.push_back(std::move(clone));
    }
    AddExactlyOne(&scratch, relax_lits);

    cursor = core_event + 1;
    const ProofStream& generated = scratch_log.stream();
    for (; scratch_cursor < generated.size(); ++scratch_cursor, ++cursor) {
      if (cursor >= cert.events.size()) {
        return Fail(tag + ": proof log ends inside the relaxation batch");
      }
      if (cert.events.kind(cursor) != ProofEventKind::kInput ||
          !SameLits(cert.events.lits(cursor), generated.lits(scratch_cursor))) {
        return Fail(tag + ": relaxation clause mismatch at event " +
                    std::to_string(cursor));
      }
    }
  }

  for (size_t i = cursor; i < cert.events.size(); ++i) {
    if (cert.events.kind(i) == ProofEventKind::kInput) {
      return Fail("unexpected input clause after the final core at event " +
                  std::to_string(i));
    }
  }
  if (lower_bound != cert.cost) {
    return Fail("claimed cost " + std::to_string(cert.cost) +
                " does not equal the proven lower bound " +
                std::to_string(lower_bound));
  }
  int64_t witness_cost = 0;
  for (const CertSoft& soft : cert.softs) {
    if (!ModelSatisfies(cert.model, soft.clause)) {
      witness_cost += soft.weight;
    }
  }
  if (witness_cost != cert.cost) {
    return Fail("witness model cost " + std::to_string(witness_cost) +
                " does not equal the claimed cost " + std::to_string(cert.cost));
  }
  return res;
}

CheckResult CheckModelOnly(const Certificate& cert) {
  if (cert.claim == Certificate::Claim::kOptimal) {
    if (cert.hards_violated != 0) {
      return Fail("model violates " + std::to_string(cert.hards_violated) +
                  " hard constraints");
    }
    if (cert.model_cost != cert.cost) {
      return Fail("model cost " + std::to_string(cert.model_cost) +
                  " does not equal the reported cost " +
                  std::to_string(cert.cost));
    }
    return {};
  }
  if (!cert.core_tracked) {
    return Fail("unsat core references an untracked hard constraint");
  }
  return {};
}

// Re-encodes the problem into a mirror MaxSAT solver and requires the
// generated input stream, variable watermark, and soft inventory to match
// the certificate's baseline exactly. Only meaningful for cold solves — a
// warm certificate's baseline is session history, not this problem.
CheckResult VerifyEncodingBaseline(const ConstraintSystem& system,
                                   const Certificate& cert) {
  MaxSatSolver mirror;
  ProofLog mirror_log;
  mirror.SetProofLog(&mirror_log);
  Tseitin<MaxSatSolver> tseitin(&mirror, system);
  for (ExprId hard : system.hard()) {
    std::optional<Lit> lit = tseitin.Encode(hard);
    if (!lit.has_value()) {
      return Fail("hard constraint not boolean-encodable in replay");
    }
    mirror.AddHard({*lit});
  }
  std::vector<Lit> soft_lits;
  soft_lits.reserve(system.soft().size());
  for (const SoftConstraint& soft : system.soft()) {
    std::optional<Lit> lit = tseitin.Encode(soft.expr);
    if (!lit.has_value()) {
      return Fail("soft constraint not boolean-encodable in replay");
    }
    soft_lits.push_back(*lit);
    mirror.AddSoft({*lit}, soft.weight);
  }
  if (static_cast<int64_t>(mirror_log.size()) != cert.baseline_events) {
    return Fail("baseline event count does not match the re-encoded problem");
  }
  if (mirror.VarCount() != static_cast<int>(cert.baseline_vars)) {
    return Fail("baseline var count does not match the re-encoded problem");
  }
  const ProofStream& generated = mirror_log.stream();
  for (size_t i = 0; i < generated.size(); ++i) {
    if (cert.events.kind(i) != generated.kind(i) ||
        !SameLits(cert.events.lits(i), generated.lits(i))) {
      return Fail("encoded clause stream diverges at event " +
                  std::to_string(i));
    }
  }
  if (cert.softs.size() != system.soft().size()) {
    return Fail("soft inventory size does not match the problem");
  }
  for (size_t i = 0; i < soft_lits.size(); ++i) {
    const CertSoft& soft = cert.softs[i];
    if (soft.clause != Clause{soft_lits[i]} || soft.selector != soft_lits[i] ||
        soft.weight != system.soft()[i].weight) {
      return Fail("soft inventory entry " + std::to_string(i) +
                  " does not match the problem");
    }
  }
  return {};
}

// Re-derives the unsat-core solver's encoding and assumption map. The core
// solver is always cold (ExtractInternalCore builds a fresh instance), so
// the generated inputs must form a prefix of the sub-proof and no other
// input may appear after it.
CheckResult VerifyCoreEncoding(const ConstraintSystem& system,
                               const Certificate& cert) {
  SatSolver scratch;
  ProofLog scratch_log;
  scratch.SetProofLog(&scratch_log);
  SatSink sink{&scratch};
  Tseitin<SatSink> tseitin(&sink, system);
  std::vector<Lit> assumptions;
  std::vector<std::vector<int64_t>> hards_by_assumption;
  std::unordered_map<int64_t, size_t> assumption_of;
  const std::vector<ExprId>& hards = system.hard();
  for (size_t i = 0; i < hards.size(); ++i) {
    std::optional<Lit> lit = tseitin.Encode(hards[i]);
    if (!lit.has_value()) {
      return Fail("hard constraint not boolean-encodable in core replay");
    }
    int64_t key = static_cast<int64_t>(lit->code());
    auto [it, inserted] = assumption_of.try_emplace(key, assumptions.size());
    if (inserted) {
      assumptions.push_back(*lit);
      hards_by_assumption.emplace_back();
    }
    hards_by_assumption[it->second].push_back(static_cast<int64_t>(i));
  }
  if (assumptions != cert.core_assumptions) {
    return Fail("core assumptions do not match the re-encoded problem");
  }
  if (hards_by_assumption != cert.core_hards) {
    return Fail("core assumption->hard map does not match the problem");
  }
  const ProofStream& generated = scratch_log.stream();
  if (generated.size() > cert.core_events.size()) {
    return Fail("core proof is shorter than its encoding");
  }
  for (size_t i = 0; i < generated.size(); ++i) {
    if (cert.core_events.kind(i) != generated.kind(i) ||
        !SameLits(cert.core_events.lits(i), generated.lits(i))) {
      return Fail("core encoding diverges at event " + std::to_string(i));
    }
  }
  for (size_t i = generated.size(); i < cert.core_events.size(); ++i) {
    if (cert.core_events.kind(i) == ProofEventKind::kInput) {
      return Fail("unexpected input clause in core proof at event " +
                  std::to_string(i));
    }
  }
  return {};
}

}  // namespace

CheckResult CheckCertificate(const Certificate& cert) {
  if (cert.kind == Certificate::Kind::kModelOnly) {
    return CheckModelOnly(cert);
  }
  return cert.claim == Certificate::Claim::kOptimal ? CheckClausalOptimal(cert)
                                                    : CheckClausalUnsat(cert);
}

CheckResult CheckCertified(const ConstraintSystem& system, MaxSmtResult* result) {
  std::shared_ptr<Certificate> cert;
  if (result->certificate == nullptr) {
    cert = std::make_shared<Certificate>();
    cert->kind = Certificate::Kind::kModelOnly;
    cert->claim = result->status == MaxSmtResult::Status::kOptimal
                      ? Certificate::Claim::kOptimal
                      : Certificate::Claim::kUnsat;
    cert->backend = result->backend;
    cert->cost = result->cost;
  } else if (result->certificate.use_count() == 1) {
    // Sole owner: fill the arithmetic in place. Legal despite the const
    // element type — every certificate is created non-const by its backend.
    cert = std::const_pointer_cast<Certificate>(result->certificate);
  } else {
    // Someone else (a warm backend, a caller) still holds the evidence;
    // copy-on-write.
    cert = std::make_shared<Certificate>(*result->certificate);
  }
  result->certificate = cert;

  CheckResult res;
  if (result->status == MaxSmtResult::Status::kOptimal) {
    // Model-side arithmetic against the original system (both kinds): the
    // claimed optimum must satisfy every hard constraint and cost exactly
    // what the backend reported.
    int64_t violated_hards = 0;
    for (ExprId hard : system.hard()) {
      if (!system.EvalOnModel(hard, result->bool_values, result->int_values)) {
        ++violated_hards;
      }
    }
    cert->hards_total = static_cast<int64_t>(system.hard().size());
    cert->hards_violated = violated_hards;
    int64_t model_cost = 0;
    std::vector<int> violated_indices;
    const std::vector<SoftConstraint>& softs = system.soft();
    for (size_t i = 0; i < softs.size(); ++i) {
      if (!system.EvalOnModel(softs[i].expr, result->bool_values,
                              result->int_values)) {
        model_cost += softs[i].weight;
        violated_indices.push_back(static_cast<int>(i));
      }
    }
    cert->model_cost = model_cost;
    if (violated_hards != 0) {
      return Fail("model violates " + std::to_string(violated_hards) +
                  " hard constraints");
    }
    if (model_cost != result->cost) {
      return Fail("model cost " + std::to_string(model_cost) +
                  " does not equal the reported cost " +
                  std::to_string(result->cost));
    }
    if (violated_indices != result->violated_soft) {
      return Fail("reported violated-soft set does not match the model");
    }
    if (cert->kind == Certificate::Kind::kClausal &&
        cert->cost != result->cost) {
      return Fail("certificate cost does not equal the reported cost");
    }
  } else if (result->status == MaxSmtResult::Status::kUnsat) {
    const int64_t hard_count = static_cast<int64_t>(system.hard().size());
    for (int index : result->unsat_core) {
      if (index < 0 || static_cast<int64_t>(index) >= hard_count) {
        cert->core_tracked = false;
      }
    }
    if (!cert->core_tracked) {
      return Fail("unsat core references an out-of-range hard constraint");
    }
    if (cert->kind == Certificate::Kind::kClausal) {
      std::vector<int64_t> reported(result->unsat_core.begin(),
                                    result->unsat_core.end());
      if (reported != cert->reported_core) {
        return Fail("certificate core does not match the reported core");
      }
    }
  } else {
    return Fail("result status is not certifiable");
  }

  if (cert->kind == Certificate::Kind::kClausal) {
    if (cert->claim == Certificate::Claim::kOptimal) {
      // Bridge: the certificate's witness must be the model the caller got.
      const size_t bools = static_cast<size_t>(system.BoolCount());
      if (cert->model.size() < bools || result->bool_values.size() < bools) {
        return Fail("certificate model does not cover the decision variables");
      }
      for (size_t v = 0; v < bools; ++v) {
        if (cert->model[v] != result->bool_values[v]) {
          return Fail("certificate model diverges from the result at var " +
                      std::to_string(v));
        }
      }
    }
    CheckResult cnf = CheckCertificate(*cert);
    res.lemmas += cnf.lemmas;
    if (!cnf.ok) {
      cnf.lemmas = res.lemmas;
      return cnf;
    }
    if (cert->claim == Certificate::Claim::kOptimal && cert->cold) {
      CheckResult enc = VerifyEncodingBaseline(system, *cert);
      if (!enc.ok) {
        enc.lemmas = res.lemmas;
        return enc;
      }
    }
    if (cert->claim == Certificate::Claim::kUnsat &&
        !cert->core_assumptions.empty()) {
      CheckResult enc = VerifyCoreEncoding(system, *cert);
      if (!enc.ok) {
        enc.lemmas = res.lemmas;
        return enc;
      }
    }
  }
  return res;
}

namespace {

class CertifyingBackend final : public MaxSmtBackend {
 public:
  CertifyingBackend(std::unique_ptr<MaxSmtBackend> inner, CertifyMode mode)
      : inner_(std::move(inner)), mode_(mode) {
    assert(mode_ != CertifyMode::kOff);
  }

  MaxSmtResult Solve(const ConstraintSystem& system,
                     double timeout_seconds) override {
    return Run(system, timeout_seconds);
  }

  MaxSmtResult SolveCertified(const ConstraintSystem& system,
                              double timeout_seconds) override {
    return Run(system, timeout_seconds);
  }

  std::string name() const override { return inner_->name(); }

 private:
  MaxSmtResult Run(const ConstraintSystem& system, double timeout_seconds) {
    MaxSmtResult result = inner_->SolveCertified(system, timeout_seconds);
    Finish(system, &result);
    return result;
  }

  void Finish(const ConstraintSystem& system, MaxSmtResult* result) {
    obs::Registry& registry = obs::CurrentRegistry();
    if (mode_ == CertifyMode::kLog) {
      // Evidence attached, checking deferred to the offline auditor.
      registry.counter("certify.logged").Increment();
      return;
    }
    const bool applicable =
        result->status == MaxSmtResult::Status::kOptimal ||
        result->status == MaxSmtResult::Status::kUnsat;
    if (!applicable || (mode_ == CertifyMode::kAuto &&
                        result->status != MaxSmtResult::Status::kUnsat)) {
      registry.counter("certify.skipped").Increment();
      return;
    }
    registry.counter("certify.checked").Increment();
    CheckResult check = CheckCertified(system, result);
    registry.counter("certify.lemmas_checked").Add(check.lemmas);
    if (check.ok) {
      result->certification = MaxSmtResult::Certification::kVerified;
      registry.counter("certify.verified").Increment();
    } else {
      result->certification = MaxSmtResult::Certification::kFailed;
      result->certify_message = check.message;
      registry.counter("certify.failed").Increment();
    }
  }

  std::unique_ptr<MaxSmtBackend> inner_;
  CertifyMode mode_;
};

}  // namespace

std::unique_ptr<MaxSmtBackend> MakeCertifyingBackend(
    std::unique_ptr<MaxSmtBackend> inner, CertifyMode mode) {
  return std::make_unique<CertifyingBackend>(std::move(inner), mode);
}

}  // namespace cpr::certify
