// Line-level diff between two configuration texts.
//
// The paper's minimality objective counts lines of configuration changed; we
// measure it exactly the way the paper extracts hand-written repairs —
// "diff'ing successive configuration snapshots" (§8.3) — using an LCS diff
// over the canonical printed form. Separator lines (`!`) and blank lines are
// ignored so stanza reflow doesn't count as change.

#ifndef CPR_SRC_CONFIG_DIFF_H_
#define CPR_SRC_CONFIG_DIFF_H_

#include <string>
#include <string_view>
#include <vector>

#include "config/ast.h"

namespace cpr {

struct DiffLine {
  enum class Kind { kAdded, kRemoved };
  Kind kind = Kind::kAdded;
  std::string text;
};

struct ConfigDiff {
  std::vector<DiffLine> lines;

  int added() const;
  int removed() const;
  // Total lines changed = added + removed (a modified line counts as one
  // removal plus one addition, matching `diff` output the paper used).
  int total() const { return static_cast<int>(lines.size()); }

  // Unified-diff-like rendering for logs and examples.
  std::string ToString() const;
};

// Diff of raw texts.
ConfigDiff DiffConfigText(std::string_view before, std::string_view after);

// Diff of two configs via their canonical printed form.
ConfigDiff DiffConfigs(const Config& before, const Config& after);

// Sum of per-device diffs across two parallel snapshots (device order must
// match).
int TotalLinesChanged(const std::vector<Config>& before, const std::vector<Config>& after);

}  // namespace cpr

#endif  // CPR_SRC_CONFIG_DIFF_H_
