// Parser for the CPR configuration language (Cisco-IOS-like).
//
// The language is line-oriented: a stanza header (`interface ...`,
// `router ospf ...`, `ip access-list extended ...`) opens a context and
// subsequent lines configure that context until the next stanza header or
// top-level command. `!` and blank lines are separators. See
// config/printer.h for the canonical form the printer emits; the parser
// accepts that form plus leading indentation.
//
// Every parse error carries a precise source location: the lexer stamps each
// token with its 1-based line and column in the raw input, and error
// messages are rendered as "line L:C: ...". Callers that want the location
// structurally (e.g. `cpr lint`'s file:line:col output) pass a
// ParseErrorDetail out-parameter.

#ifndef CPR_SRC_CONFIG_PARSER_H_
#define CPR_SRC_CONFIG_PARSER_H_

#include <string>
#include <string_view>

#include "config/ast.h"
#include "netbase/result.h"

namespace cpr {

// Structured location + message for a parse failure. `line` and `col` are
// 1-based; `col` points at the offending token (or just past the last token
// when the line ended early).
struct ParseErrorDetail {
  int line = 0;
  int col = 0;
  std::string message;  // Bare message, without the location prefix.
};

// Parses one router's configuration. Errors carry the offending line and
// column ("line L:C: message"); when `detail` is non-null it receives the
// same information structurally on failure (and is left untouched on
// success).
Result<Config> ParseConfig(std::string_view text, ParseErrorDetail* detail = nullptr);

}  // namespace cpr

#endif  // CPR_SRC_CONFIG_PARSER_H_
