// Parser for the CPR configuration language (Cisco-IOS-like).
//
// The language is line-oriented: a stanza header (`interface ...`,
// `router ospf ...`, `ip access-list extended ...`) opens a context and
// subsequent lines configure that context until the next stanza header or
// top-level command. `!` and blank lines are separators. See
// config/printer.h for the canonical form the printer emits; the parser
// accepts that form plus leading indentation.

#ifndef CPR_SRC_CONFIG_PARSER_H_
#define CPR_SRC_CONFIG_PARSER_H_

#include <string_view>

#include "config/ast.h"
#include "netbase/result.h"

namespace cpr {

// Parses one router's configuration. Errors carry the offending line number
// and text.
Result<Config> ParseConfig(std::string_view text);

}  // namespace cpr

#endif  // CPR_SRC_CONFIG_PARSER_H_
