#include "config/diff.h"

#include <algorithm>
#include <cassert>

#include "config/printer.h"
#include "netbase/string_util.h"

namespace cpr {

namespace {

// Meaningful config lines: trimmed, non-empty, non-separator.
std::vector<std::string> MeaningfulLines(std::string_view text) {
  std::vector<std::string> out;
  for (std::string_view line : SplitLines(text)) {
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '!') {
      continue;
    }
    out.emplace_back(trimmed);
  }
  return out;
}

}  // namespace

int ConfigDiff::added() const {
  return static_cast<int>(
      std::count_if(lines.begin(), lines.end(),
                    [](const DiffLine& l) { return l.kind == DiffLine::Kind::kAdded; }));
}

int ConfigDiff::removed() const { return total() - added(); }

std::string ConfigDiff::ToString() const {
  std::string out;
  for (const DiffLine& line : lines) {
    out += line.kind == DiffLine::Kind::kAdded ? "+ " : "- ";
    out += line.text;
    out += "\n";
  }
  return out;
}

ConfigDiff DiffConfigText(std::string_view before, std::string_view after) {
  std::vector<std::string> a = MeaningfulLines(before);
  std::vector<std::string> b = MeaningfulLines(after);
  const size_t n = a.size();
  const size_t m = b.size();

  // Standard LCS table; configs are at most a few thousand lines so the
  // quadratic table is fine.
  std::vector<std::vector<int>> lcs(n + 1, std::vector<int>(m + 1, 0));
  for (size_t i = n; i-- > 0;) {
    for (size_t j = m; j-- > 0;) {
      lcs[i][j] = a[i] == b[j] ? lcs[i + 1][j + 1] + 1
                               : std::max(lcs[i + 1][j], lcs[i][j + 1]);
    }
  }

  ConfigDiff diff;
  size_t i = 0;
  size_t j = 0;
  while (i < n && j < m) {
    if (a[i] == b[j]) {
      ++i;
      ++j;
    } else if (lcs[i + 1][j] >= lcs[i][j + 1]) {
      diff.lines.push_back({DiffLine::Kind::kRemoved, a[i++]});
    } else {
      diff.lines.push_back({DiffLine::Kind::kAdded, b[j++]});
    }
  }
  while (i < n) {
    diff.lines.push_back({DiffLine::Kind::kRemoved, a[i++]});
  }
  while (j < m) {
    diff.lines.push_back({DiffLine::Kind::kAdded, b[j++]});
  }
  return diff;
}

ConfigDiff DiffConfigs(const Config& before, const Config& after) {
  return DiffConfigText(PrintConfig(before), PrintConfig(after));
}

int TotalLinesChanged(const std::vector<Config>& before, const std::vector<Config>& after) {
  assert(before.size() == after.size());
  int total = 0;
  for (size_t i = 0; i < before.size(); ++i) {
    total += DiffConfigs(before[i], after[i]).total();
  }
  return total;
}

}  // namespace cpr
