#include "config/ast.h"

namespace cpr {

bool AclEntry::Matches(const TrafficClass& tc) const {
  if (src.has_value() && !src->Contains(tc.src())) {
    return false;
  }
  if (dst.has_value() && !dst->Contains(tc.dst())) {
    return false;
  }
  return true;
}

bool AccessList::Permits(const TrafficClass& tc) const {
  for (const AclEntry& entry : entries) {
    if (entry.Matches(tc)) {
      return entry.permit;
    }
  }
  return false;  // Implicit deny.
}

bool PrefixListEntry::Matches(const Ipv4Prefix& candidate) const {
  if (le32) {
    return prefix.Contains(candidate);
  }
  return prefix == candidate;
}

bool PrefixList::Permits(const Ipv4Prefix& candidate) const {
  for (const PrefixListEntry& entry : entries) {
    if (entry.Matches(candidate)) {
      return entry.permit;
    }
  }
  return false;  // Implicit deny.
}

std::string RouteSourceName(RouteSource source) {
  switch (source) {
    case RouteSource::kConnected:
      return "connected";
    case RouteSource::kStatic:
      return "static";
    case RouteSource::kOspf:
      return "ospf";
    case RouteSource::kBgp:
      return "bgp";
    case RouteSource::kRip:
      return "rip";
  }
  return "unknown";
}

const InterfaceConfig* Config::FindInterface(const std::string& name) const {
  for (const InterfaceConfig& intf : interfaces) {
    if (intf.name == name) {
      return &intf;
    }
  }
  return nullptr;
}

InterfaceConfig* Config::FindInterface(const std::string& name) {
  for (InterfaceConfig& intf : interfaces) {
    if (intf.name == name) {
      return &intf;
    }
  }
  return nullptr;
}

const InterfaceConfig* Config::FindInterfaceByAddress(Ipv4Address ip) const {
  for (const InterfaceConfig& intf : interfaces) {
    if (intf.address.has_value() && intf.address->ip == ip) {
      return &intf;
    }
  }
  return nullptr;
}

const OspfConfig* Config::FindOspf(int process_id) const {
  for (const OspfConfig& ospf : ospf_processes) {
    if (ospf.process_id == process_id) {
      return &ospf;
    }
  }
  return nullptr;
}

OspfConfig* Config::FindOspf(int process_id) {
  for (OspfConfig& ospf : ospf_processes) {
    if (ospf.process_id == process_id) {
      return &ospf;
    }
  }
  return nullptr;
}

const AccessList* Config::FindAccessList(const std::string& name) const {
  auto it = access_lists.find(name);
  return it == access_lists.end() ? nullptr : &it->second;
}

const PrefixList* Config::FindPrefixList(const std::string& name) const {
  auto it = prefix_lists.find(name);
  return it == prefix_lists.end() ? nullptr : &it->second;
}

std::vector<const InterfaceConfig*> Config::OspfInterfaces(const OspfConfig& process) const {
  std::vector<const InterfaceConfig*> out;
  for (const InterfaceConfig& intf : interfaces) {
    if (intf.shutdown || !intf.address.has_value()) {
      continue;
    }
    for (const Ipv4Prefix& network : process.networks) {
      if (network.Contains(intf.address->ip)) {
        out.push_back(&intf);
        break;
      }
    }
  }
  return out;
}

}  // namespace cpr
