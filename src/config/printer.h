// Canonical printer for Config.
//
// The printer defines *the* textual form of a configuration: "lines of
// configuration changed" (the paper's minimality metric, Figures 9 and 11b)
// is measured by diffing printed text before and after a repair, so the
// output is deterministic — stanzas and entries appear in model order, maps
// in key order, with IOS-style single-space indentation for stanza bodies.

#ifndef CPR_SRC_CONFIG_PRINTER_H_
#define CPR_SRC_CONFIG_PRINTER_H_

#include <string>

#include "config/ast.h"

namespace cpr {

std::string PrintConfig(const Config& config);

// Round-trip property used by tests: ParseConfig(PrintConfig(c)) == c for
// every well-formed c.

}  // namespace cpr

#endif  // CPR_SRC_CONFIG_PRINTER_H_
