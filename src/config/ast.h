// Router configuration model.
//
// CPR's configuration language is a Cisco-IOS-like subset covering exactly
// the constructs ARC/HARC model (paper §9): interfaces with addresses and
// ACL applications, OSPF/BGP/RIP routing processes, routing adjacencies
// (via `network` statements and passive interfaces), route filters
// (prefix lists applied as distribute-lists), static routes with
// administrative distance, and route redistribution.
//
// The model is the single source of truth: the parser produces it, the
// printer emits canonical text from it (used to count "lines of
// configuration changed"), the topology layer derives devices/links/subnets
// from it, and the translator mutates it to apply repairs.

#ifndef CPR_SRC_CONFIG_AST_H_
#define CPR_SRC_CONFIG_AST_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "netbase/ipv4.h"
#include "netbase/traffic_class.h"

namespace cpr {

// ---------------------------------------------------------------------------
// Packet filters (ACLs)
// ---------------------------------------------------------------------------

// One `permit ip ...` / `deny ip ...` line in a named extended access list.
// A nullopt prefix means `any`.
struct AclEntry {
  bool permit = true;
  std::optional<Ipv4Prefix> src;
  std::optional<Ipv4Prefix> dst;

  // Whether this entry matches the traffic class (both endpoints contained).
  bool Matches(const TrafficClass& tc) const;

  bool operator==(const AclEntry&) const = default;
};

// `ip access-list extended NAME` with first-match-wins semantics and an
// implicit trailing deny, matching IOS behaviour.
struct AccessList {
  std::string name;
  std::vector<AclEntry> entries;

  bool Permits(const TrafficClass& tc) const;

  bool operator==(const AccessList&) const = default;
};

// ---------------------------------------------------------------------------
// Route filters (prefix lists)
// ---------------------------------------------------------------------------

// One `ip prefix-list NAME permit|deny A.B.C.D/len [le 32]` line. With
// `le 32` the entry matches the prefix and anything more specific; without
// it, only the exact prefix.
struct PrefixListEntry {
  bool permit = true;
  Ipv4Prefix prefix;
  bool le32 = false;

  bool Matches(const Ipv4Prefix& candidate) const;

  bool operator==(const PrefixListEntry&) const = default;
};

struct PrefixList {
  std::string name;
  std::vector<PrefixListEntry> entries;

  // First-match-wins with implicit trailing deny.
  bool Permits(const Ipv4Prefix& candidate) const;

  bool operator==(const PrefixList&) const = default;
};

// ---------------------------------------------------------------------------
// Interfaces
// ---------------------------------------------------------------------------

struct InterfaceAddress {
  Ipv4Address ip;
  int prefix_length = 24;

  // The connected subnet (host bits masked off).
  Ipv4Prefix Prefix() const { return Ipv4Prefix(ip, prefix_length); }

  bool operator==(const InterfaceAddress&) const = default;
};

struct InterfaceConfig {
  std::string name;  // e.g. "Ethernet0/1"
  std::string description;
  std::optional<InterfaceAddress> address;
  // Names of ACLs applied to traffic entering / exiting this interface.
  std::optional<std::string> acl_in;
  std::optional<std::string> acl_out;
  // OSPF cost of the attached link as seen from this interface.
  int ospf_cost = 1;
  bool shutdown = false;

  bool operator==(const InterfaceConfig&) const = default;
};

// ---------------------------------------------------------------------------
// Routing processes
// ---------------------------------------------------------------------------

enum class RouteSource {
  kConnected,
  kStatic,
  kOspf,
  kBgp,
  kRip,
};

std::string RouteSourceName(RouteSource source);

// `redistribute connected|static|ospf PID|bgp ASN|rip`
struct Redistribution {
  RouteSource from = RouteSource::kConnected;
  // Process id / ASN for protocol sources; 0 for connected/static/rip.
  int process_id = 0;

  bool operator==(const Redistribution&) const = default;
};

// Route-filter application on a routing process: routes whose destination is
// denied by the prefix list are not used/advertised by the process.
struct DistributeList {
  std::string prefix_list;

  bool operator==(const DistributeList&) const = default;
};

struct OspfConfig {
  int process_id = 1;
  // Interfaces participate when their address falls in one of these ranges.
  std::vector<Ipv4Prefix> networks;
  // Interfaces over which no adjacency is formed (subnet still advertised).
  std::set<std::string> passive_interfaces;
  std::vector<Redistribution> redistributes;
  std::optional<DistributeList> distribute_list;

  bool operator==(const OspfConfig&) const = default;
};

struct BgpNeighbor {
  Ipv4Address ip;
  int remote_as = 0;

  bool operator==(const BgpNeighbor&) const = default;
};

struct BgpConfig {
  int asn = 1;
  std::vector<BgpNeighbor> neighbors;
  // Locally originated destinations.
  std::vector<Ipv4Prefix> networks;
  std::vector<Redistribution> redistributes;
  std::optional<DistributeList> distribute_list;

  bool operator==(const BgpConfig&) const = default;
};

struct RipConfig {
  std::vector<Ipv4Prefix> networks;
  std::vector<Redistribution> redistributes;
  std::optional<DistributeList> distribute_list;

  bool operator==(const RipConfig&) const = default;
};

// `ip route PREFIX NEXTHOP [distance]`. The administrative distance orders
// the route against protocol-computed routes (static default 1; OSPF 110).
struct StaticRouteConfig {
  Ipv4Prefix prefix;
  Ipv4Address next_hop;
  int distance = 1;

  bool operator==(const StaticRouteConfig&) const = default;
};

// Administrative distances used by the simulator's route selection.
inline constexpr int kAdConnected = 0;
inline constexpr int kAdStaticDefault = 1;
inline constexpr int kAdBgp = 20;
inline constexpr int kAdOspf = 110;
inline constexpr int kAdRip = 120;

// ---------------------------------------------------------------------------
// Whole-router configuration
// ---------------------------------------------------------------------------

class Config {
 public:
  std::string hostname;
  std::vector<InterfaceConfig> interfaces;
  std::vector<OspfConfig> ospf_processes;
  std::optional<BgpConfig> bgp;
  std::optional<RipConfig> rip;
  std::vector<StaticRouteConfig> static_routes;
  std::map<std::string, AccessList> access_lists;
  std::map<std::string, PrefixList> prefix_lists;

  // Lookup helpers (nullptr when absent).
  const InterfaceConfig* FindInterface(const std::string& name) const;
  InterfaceConfig* FindInterface(const std::string& name);
  const InterfaceConfig* FindInterfaceByAddress(Ipv4Address ip) const;
  const OspfConfig* FindOspf(int process_id) const;
  OspfConfig* FindOspf(int process_id);
  const AccessList* FindAccessList(const std::string& name) const;
  const PrefixList* FindPrefixList(const std::string& name) const;

  // Interfaces participating in an OSPF process: up, addressed, and matching
  // one of the process's `network` ranges.
  std::vector<const InterfaceConfig*> OspfInterfaces(const OspfConfig& process) const;

  bool operator==(const Config&) const = default;
};

}  // namespace cpr

#endif  // CPR_SRC_CONFIG_AST_H_
