#include "config/printer.h"

#include <sstream>

namespace cpr {

namespace {

std::string PrefixOrAny(const std::optional<Ipv4Prefix>& prefix) {
  return prefix.has_value() ? prefix->ToString() : "any";
}

void PrintRedistributes(std::ostringstream* out, const std::vector<Redistribution>& redists) {
  for (const Redistribution& redist : redists) {
    *out << " redistribute " << RouteSourceName(redist.from);
    if (redist.from == RouteSource::kOspf || redist.from == RouteSource::kBgp) {
      *out << " " << redist.process_id;
    }
    *out << "\n";
  }
}

void PrintDistributeList(std::ostringstream* out,
                         const std::optional<DistributeList>& dist_list) {
  if (dist_list.has_value()) {
    *out << " distribute-list prefix " << dist_list->prefix_list << "\n";
  }
}

}  // namespace

std::string PrintConfig(const Config& config) {
  std::ostringstream out;
  out << "hostname " << config.hostname << "\n";

  for (const InterfaceConfig& intf : config.interfaces) {
    out << "!\n";
    out << "interface " << intf.name << "\n";
    if (!intf.description.empty()) {
      out << " description " << intf.description << "\n";
    }
    if (intf.shutdown) {
      out << " shutdown\n";
    }
    if (intf.address.has_value()) {
      out << " ip address " << intf.address->ip.ToString() << "/" << intf.address->prefix_length
          << "\n";
    }
    if (intf.ospf_cost != 1) {
      out << " ip ospf cost " << intf.ospf_cost << "\n";
    }
    if (intf.acl_in.has_value()) {
      out << " ip access-group " << *intf.acl_in << " in\n";
    }
    if (intf.acl_out.has_value()) {
      out << " ip access-group " << *intf.acl_out << " out\n";
    }
  }

  for (const auto& [name, acl] : config.access_lists) {
    out << "!\n";
    out << "ip access-list extended " << name << "\n";
    for (const AclEntry& entry : acl.entries) {
      out << " " << (entry.permit ? "permit" : "deny") << " ip " << PrefixOrAny(entry.src)
          << " " << PrefixOrAny(entry.dst) << "\n";
    }
  }

  for (const auto& [name, prefix_list] : config.prefix_lists) {
    out << "!\n";
    for (const PrefixListEntry& entry : prefix_list.entries) {
      out << "ip prefix-list " << name << " " << (entry.permit ? "permit" : "deny") << " "
          << entry.prefix.ToString();
      if (entry.le32) {
        out << " le 32";
      }
      out << "\n";
    }
  }

  for (const OspfConfig& ospf : config.ospf_processes) {
    out << "!\n";
    out << "router ospf " << ospf.process_id << "\n";
    PrintRedistributes(&out, ospf.redistributes);
    for (const std::string& passive : ospf.passive_interfaces) {
      out << " passive-interface " << passive << "\n";
    }
    for (const Ipv4Prefix& network : ospf.networks) {
      out << " network " << network.ToString() << " area 0\n";
    }
    PrintDistributeList(&out, ospf.distribute_list);
  }

  if (config.bgp.has_value()) {
    out << "!\n";
    out << "router bgp " << config.bgp->asn << "\n";
    for (const BgpNeighbor& neighbor : config.bgp->neighbors) {
      out << " neighbor " << neighbor.ip.ToString() << " remote-as " << neighbor.remote_as
          << "\n";
    }
    for (const Ipv4Prefix& network : config.bgp->networks) {
      out << " network " << network.ToString() << "\n";
    }
    PrintRedistributes(&out, config.bgp->redistributes);
    PrintDistributeList(&out, config.bgp->distribute_list);
  }

  if (config.rip.has_value()) {
    out << "!\n";
    out << "router rip\n";
    for (const Ipv4Prefix& network : config.rip->networks) {
      out << " network " << network.ToString() << "\n";
    }
    PrintRedistributes(&out, config.rip->redistributes);
    PrintDistributeList(&out, config.rip->distribute_list);
  }

  for (const StaticRouteConfig& route : config.static_routes) {
    out << "ip route " << route.prefix.ToString() << " " << route.next_hop.ToString();
    if (route.distance != 1) {
      out << " " << route.distance;
    }
    out << "\n";
  }

  return out.str();
}

}  // namespace cpr
