#include "config/parser.h"

#include <charconv>
#include <string>
#include <vector>

#include "netbase/string_util.h"

namespace cpr {

namespace {

// What stanza the parser is currently inside.
enum class Context {
  kTopLevel,
  kInterface,
  kOspf,
  kBgp,
  kRip,
  kAccessList,
};

class ConfigParser {
 public:
  explicit ConfigParser(std::string_view text) : text_(text) {}

  Result<Config> Parse() {
    int line_number = 0;
    for (std::string_view raw_line : SplitLines(text_)) {
      ++line_number;
      std::string_view line = TrimWhitespace(raw_line);
      if (line.empty() || line[0] == '!') {
        continue;
      }
      Status status = ParseLine(line);
      if (!status.ok()) {
        return Error("line " + std::to_string(line_number) + ": " + status.error().message());
      }
    }
    return std::move(config_);
  }

 private:
  Status ParseLine(std::string_view line) {
    std::vector<std::string_view> tokens = SplitTokens(line);
    const std::string_view head = tokens[0];

    // Stanza headers and unambiguous top-level commands reset the context.
    if (head == "hostname") {
      return ParseHostname(tokens);
    }
    if (head == "interface") {
      return BeginInterface(tokens);
    }
    if (head == "router") {
      return BeginRouter(tokens);
    }
    if (head == "ip" && tokens.size() >= 2 &&
        (tokens[1] == "route" || tokens[1] == "prefix-list" || tokens[1] == "access-list")) {
      context_ = Context::kTopLevel;
      if (tokens[1] == "route") {
        return ParseStaticRoute(tokens);
      }
      if (tokens[1] == "prefix-list") {
        return ParsePrefixListLine(tokens);
      }
      return BeginAccessList(tokens);
    }

    switch (context_) {
      case Context::kInterface:
        return ParseInterfaceLine(tokens);
      case Context::kOspf:
        return ParseOspfLine(tokens);
      case Context::kBgp:
        return ParseBgpLine(tokens);
      case Context::kRip:
        return ParseRipLine(tokens);
      case Context::kAccessList:
        return ParseAclLine(tokens);
      case Context::kTopLevel:
        break;
    }
    return Error("unrecognized top-level command: " + std::string(line));
  }

  Status ParseHostname(const std::vector<std::string_view>& tokens) {
    if (tokens.size() != 2) {
      return Error("hostname expects one argument");
    }
    config_.hostname = std::string(tokens[1]);
    context_ = Context::kTopLevel;
    return Status::Ok();
  }

  Status BeginInterface(const std::vector<std::string_view>& tokens) {
    if (tokens.size() != 2) {
      return Error("interface expects a name");
    }
    InterfaceConfig intf;
    intf.name = std::string(tokens[1]);
    config_.interfaces.push_back(std::move(intf));
    context_ = Context::kInterface;
    return Status::Ok();
  }

  Status BeginRouter(const std::vector<std::string_view>& tokens) {
    if (tokens.size() < 2) {
      return Error("router expects a protocol");
    }
    if (tokens[1] == "ospf") {
      int pid = 1;
      if (tokens.size() >= 3 && !ParseInt(tokens[2], &pid)) {
        return Error("malformed OSPF process id");
      }
      OspfConfig ospf;
      ospf.process_id = pid;
      config_.ospf_processes.push_back(std::move(ospf));
      context_ = Context::kOspf;
      return Status::Ok();
    }
    if (tokens[1] == "bgp") {
      int asn = 1;
      if (tokens.size() >= 3 && !ParseInt(tokens[2], &asn)) {
        return Error("malformed BGP ASN");
      }
      config_.bgp.emplace();
      config_.bgp->asn = asn;
      context_ = Context::kBgp;
      return Status::Ok();
    }
    if (tokens[1] == "rip") {
      config_.rip.emplace();
      context_ = Context::kRip;
      return Status::Ok();
    }
    return Error("unknown routing protocol: " + std::string(tokens[1]));
  }

  Status BeginAccessList(const std::vector<std::string_view>& tokens) {
    // ip access-list extended NAME
    if (tokens.size() != 4 || tokens[2] != "extended") {
      return Error("expected: ip access-list extended NAME");
    }
    current_acl_ = std::string(tokens[3]);
    config_.access_lists[current_acl_].name = current_acl_;
    context_ = Context::kAccessList;
    return Status::Ok();
  }

  Status ParseInterfaceLine(const std::vector<std::string_view>& tokens) {
    InterfaceConfig& intf = config_.interfaces.back();
    if (tokens[0] == "description") {
      std::vector<std::string> words;
      for (size_t i = 1; i < tokens.size(); ++i) {
        words.emplace_back(tokens[i]);
      }
      intf.description = JoinStrings(words, " ");
      return Status::Ok();
    }
    if (tokens[0] == "shutdown") {
      intf.shutdown = true;
      return Status::Ok();
    }
    if (tokens[0] == "ip" && tokens.size() >= 3 && tokens[1] == "address") {
      Result<Ipv4Prefix> parsed = Ipv4Prefix::Parse(tokens[2]);
      if (!parsed.ok()) {
        return parsed.error();
      }
      // Keep the host address (Prefix::Parse masks it off), so re-parse the
      // address part separately.
      size_t slash = tokens[2].find('/');
      Result<Ipv4Address> ip = Ipv4Address::Parse(tokens[2].substr(0, slash));
      if (!ip.ok()) {
        return ip.error();
      }
      intf.address = InterfaceAddress{*ip, parsed->length()};
      return Status::Ok();
    }
    if (tokens[0] == "ip" && tokens.size() == 4 && tokens[1] == "access-group") {
      if (tokens[3] == "in") {
        intf.acl_in = std::string(tokens[2]);
      } else if (tokens[3] == "out") {
        intf.acl_out = std::string(tokens[2]);
      } else {
        return Error("access-group direction must be in|out");
      }
      return Status::Ok();
    }
    if (tokens[0] == "ip" && tokens.size() == 4 && tokens[1] == "ospf" && tokens[2] == "cost") {
      if (!ParseInt(tokens[3], &intf.ospf_cost) || intf.ospf_cost <= 0) {
        return Error("malformed ospf cost");
      }
      return Status::Ok();
    }
    return Error("unrecognized interface command");
  }

  Status ParseNetworkStatement(const std::vector<std::string_view>& tokens,
                               std::vector<Ipv4Prefix>* networks) {
    // network A.B.C.D/len [area N]
    if (tokens.size() < 2) {
      return Error("network expects a prefix");
    }
    Result<Ipv4Prefix> prefix = Ipv4Prefix::Parse(tokens[1]);
    if (!prefix.ok()) {
      return prefix.error();
    }
    networks->push_back(*prefix);
    return Status::Ok();
  }

  Status ParseRedistribute(const std::vector<std::string_view>& tokens,
                           std::vector<Redistribution>* redistributes) {
    if (tokens.size() < 2) {
      return Error("redistribute expects a source");
    }
    Redistribution redist;
    if (tokens[1] == "connected") {
      redist.from = RouteSource::kConnected;
    } else if (tokens[1] == "static") {
      redist.from = RouteSource::kStatic;
    } else if (tokens[1] == "rip") {
      redist.from = RouteSource::kRip;
    } else if (tokens[1] == "ospf" || tokens[1] == "bgp") {
      redist.from = tokens[1] == "ospf" ? RouteSource::kOspf : RouteSource::kBgp;
      if (tokens.size() < 3 || !ParseInt(tokens[2], &redist.process_id)) {
        return Error("redistribute " + std::string(tokens[1]) + " expects a process id");
      }
    } else {
      return Error("unknown redistribute source: " + std::string(tokens[1]));
    }
    redistributes->push_back(redist);
    return Status::Ok();
  }

  Status ParseDistributeList(const std::vector<std::string_view>& tokens,
                             std::optional<DistributeList>* dist_list) {
    // distribute-list prefix NAME
    if (tokens.size() != 3 || tokens[1] != "prefix") {
      return Error("expected: distribute-list prefix NAME");
    }
    *dist_list = DistributeList{std::string(tokens[2])};
    return Status::Ok();
  }

  Status ParseOspfLine(const std::vector<std::string_view>& tokens) {
    OspfConfig& ospf = config_.ospf_processes.back();
    if (tokens[0] == "network") {
      return ParseNetworkStatement(tokens, &ospf.networks);
    }
    if (tokens[0] == "passive-interface" && tokens.size() == 2) {
      ospf.passive_interfaces.insert(std::string(tokens[1]));
      return Status::Ok();
    }
    if (tokens[0] == "redistribute") {
      return ParseRedistribute(tokens, &ospf.redistributes);
    }
    if (tokens[0] == "distribute-list") {
      return ParseDistributeList(tokens, &ospf.distribute_list);
    }
    return Error("unrecognized OSPF command");
  }

  Status ParseBgpLine(const std::vector<std::string_view>& tokens) {
    BgpConfig& bgp = *config_.bgp;
    if (tokens[0] == "neighbor" && tokens.size() == 4 && tokens[2] == "remote-as") {
      Result<Ipv4Address> ip = Ipv4Address::Parse(tokens[1]);
      if (!ip.ok()) {
        return ip.error();
      }
      BgpNeighbor neighbor;
      neighbor.ip = *ip;
      if (!ParseInt(tokens[3], &neighbor.remote_as)) {
        return Error("malformed remote-as");
      }
      bgp.neighbors.push_back(neighbor);
      return Status::Ok();
    }
    if (tokens[0] == "network") {
      return ParseNetworkStatement(tokens, &bgp.networks);
    }
    if (tokens[0] == "redistribute") {
      return ParseRedistribute(tokens, &bgp.redistributes);
    }
    if (tokens[0] == "distribute-list") {
      return ParseDistributeList(tokens, &bgp.distribute_list);
    }
    return Error("unrecognized BGP command");
  }

  Status ParseRipLine(const std::vector<std::string_view>& tokens) {
    RipConfig& rip = *config_.rip;
    if (tokens[0] == "network") {
      return ParseNetworkStatement(tokens, &rip.networks);
    }
    if (tokens[0] == "redistribute") {
      return ParseRedistribute(tokens, &rip.redistributes);
    }
    if (tokens[0] == "distribute-list") {
      return ParseDistributeList(tokens, &rip.distribute_list);
    }
    return Error("unrecognized RIP command");
  }

  Status ParseAclLine(const std::vector<std::string_view>& tokens) {
    // permit|deny ip SRC DST where SRC/DST is `any` or a prefix.
    if (tokens.size() != 4 || tokens[1] != "ip" ||
        (tokens[0] != "permit" && tokens[0] != "deny")) {
      return Error("expected: permit|deny ip SRC DST");
    }
    AclEntry entry;
    entry.permit = tokens[0] == "permit";
    if (tokens[2] != "any") {
      Result<Ipv4Prefix> src = Ipv4Prefix::Parse(tokens[2]);
      if (!src.ok()) {
        return src.error();
      }
      entry.src = *src;
    }
    if (tokens[3] != "any") {
      Result<Ipv4Prefix> dst = Ipv4Prefix::Parse(tokens[3]);
      if (!dst.ok()) {
        return dst.error();
      }
      entry.dst = *dst;
    }
    config_.access_lists[current_acl_].entries.push_back(entry);
    return Status::Ok();
  }

  Status ParsePrefixListLine(const std::vector<std::string_view>& tokens) {
    // ip prefix-list NAME permit|deny PFX [le 32]
    if (tokens.size() < 5 || (tokens[3] != "permit" && tokens[3] != "deny")) {
      return Error("expected: ip prefix-list NAME permit|deny PREFIX [le 32]");
    }
    PrefixListEntry entry;
    entry.permit = tokens[3] == "permit";
    Result<Ipv4Prefix> prefix = Ipv4Prefix::Parse(tokens[4]);
    if (!prefix.ok()) {
      return prefix.error();
    }
    entry.prefix = *prefix;
    if (tokens.size() == 7 && tokens[5] == "le" && tokens[6] == "32") {
      entry.le32 = true;
    } else if (tokens.size() != 5) {
      return Error("trailing tokens in prefix-list entry");
    }
    std::string name(tokens[2]);
    config_.prefix_lists[name].name = name;
    config_.prefix_lists[name].entries.push_back(entry);
    return Status::Ok();
  }

  Status ParseStaticRoute(const std::vector<std::string_view>& tokens) {
    // ip route PREFIX NEXTHOP [distance]
    if (tokens.size() < 4) {
      return Error("expected: ip route PREFIX NEXTHOP [distance]");
    }
    StaticRouteConfig route;
    Result<Ipv4Prefix> prefix = Ipv4Prefix::Parse(tokens[2]);
    if (!prefix.ok()) {
      return prefix.error();
    }
    route.prefix = *prefix;
    Result<Ipv4Address> next_hop = Ipv4Address::Parse(tokens[3]);
    if (!next_hop.ok()) {
      return next_hop.error();
    }
    route.next_hop = *next_hop;
    if (tokens.size() >= 5) {
      if (!ParseInt(tokens[4], &route.distance) || route.distance < 1 ||
          route.distance > 255) {
        return Error("malformed administrative distance");
      }
    }
    config_.static_routes.push_back(route);
    return Status::Ok();
  }

  static bool ParseInt(std::string_view text, int* out) {
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), *out);
    return ec == std::errc() && ptr == text.data() + text.size();
  }

  std::string_view text_;
  Config config_;
  Context context_ = Context::kTopLevel;
  std::string current_acl_;
};

}  // namespace

Result<Config> ParseConfig(std::string_view text) { return ConfigParser(text).Parse(); }

}  // namespace cpr
