#include "config/parser.h"

#include <charconv>
#include <string>
#include <vector>

#include "netbase/string_util.h"

namespace cpr {

namespace {

// What stanza the parser is currently inside.
enum class Context {
  kTopLevel,
  kInterface,
  kOspf,
  kBgp,
  kRip,
  kAccessList,
};

// One lexed word plus where it starts in the raw line (1-based column).
struct Token {
  std::string_view text;
  int col = 1;
};

class ConfigParser {
 public:
  explicit ConfigParser(std::string_view text, ParseErrorDetail* detail)
      : text_(text), detail_(detail) {}

  Result<Config> Parse() {
    for (std::string_view raw_line : SplitLines(text_)) {
      ++line_;
      std::string_view trimmed = TrimWhitespace(raw_line);
      if (trimmed.empty() || trimmed[0] == '!') {
        continue;
      }
      Lex(raw_line);
      Status status = ParseLine();
      if (!status.ok()) {
        return status.error();
      }
    }
    return std::move(config_);
  }

 private:
  // Splits the raw line into tokens, recording each token's column so error
  // messages (and cpr lint's file:line:col rendering) can point at it.
  void Lex(std::string_view raw_line) {
    tokens_.clear();
    size_t i = 0;
    while (i < raw_line.size()) {
      if (raw_line[i] == ' ' || raw_line[i] == '\t') {
        ++i;
        continue;
      }
      size_t start = i;
      while (i < raw_line.size() && raw_line[i] != ' ' && raw_line[i] != '\t') {
        ++i;
      }
      tokens_.push_back(
          Token{raw_line.substr(start, i - start), static_cast<int>(start) + 1});
    }
  }

  size_t Count() const { return tokens_.size(); }
  std::string_view Tok(size_t i) const { return tokens_[i].text; }

  // Builds a located error pointing at token `index` (clamped to just past
  // the final token when the line ended before the expected argument).
  Status Err(size_t index, std::string message) {
    int col = 1;
    if (index < tokens_.size()) {
      col = tokens_[index].col;
    } else if (!tokens_.empty()) {
      const Token& last = tokens_.back();
      col = last.col + static_cast<int>(last.text.size());
    }
    if (detail_ != nullptr) {
      detail_->line = line_;
      detail_->col = col;
      detail_->message = message;
    }
    return Error("line " + std::to_string(line_) + ":" + std::to_string(col) + ": " +
                 std::move(message));
  }

  Status ParseLine() {
    const std::string_view head = Tok(0);

    // Stanza headers and unambiguous top-level commands reset the context.
    if (head == "hostname") {
      return ParseHostname();
    }
    if (head == "interface") {
      return BeginInterface();
    }
    if (head == "router") {
      return BeginRouter();
    }
    if (head == "ip" && Count() >= 2 &&
        (Tok(1) == "route" || Tok(1) == "prefix-list" || Tok(1) == "access-list")) {
      context_ = Context::kTopLevel;
      if (Tok(1) == "route") {
        return ParseStaticRoute();
      }
      if (Tok(1) == "prefix-list") {
        return ParsePrefixListLine();
      }
      return BeginAccessList();
    }

    switch (context_) {
      case Context::kInterface:
        return ParseInterfaceLine();
      case Context::kOspf:
        return ParseOspfLine();
      case Context::kBgp:
        return ParseBgpLine();
      case Context::kRip:
        return ParseRipLine();
      case Context::kAccessList:
        return ParseAclLine();
      case Context::kTopLevel:
        break;
    }
    return Err(0, "unrecognized top-level command: " + std::string(head));
  }

  Status ParseHostname() {
    if (Count() != 2) {
      return Err(1, "hostname expects one argument");
    }
    config_.hostname = std::string(Tok(1));
    context_ = Context::kTopLevel;
    return Status::Ok();
  }

  Status BeginInterface() {
    if (Count() != 2) {
      return Err(1, "interface expects a name");
    }
    InterfaceConfig intf;
    intf.name = std::string(Tok(1));
    config_.interfaces.push_back(std::move(intf));
    context_ = Context::kInterface;
    return Status::Ok();
  }

  Status BeginRouter() {
    if (Count() < 2) {
      return Err(1, "router expects a protocol");
    }
    if (Tok(1) == "ospf") {
      int pid = 1;
      if (Count() >= 3 && !ParseInt(Tok(2), &pid)) {
        return Err(2, "malformed OSPF process id");
      }
      OspfConfig ospf;
      ospf.process_id = pid;
      config_.ospf_processes.push_back(std::move(ospf));
      context_ = Context::kOspf;
      return Status::Ok();
    }
    if (Tok(1) == "bgp") {
      int asn = 1;
      if (Count() >= 3 && !ParseInt(Tok(2), &asn)) {
        return Err(2, "malformed BGP ASN");
      }
      config_.bgp.emplace();
      config_.bgp->asn = asn;
      context_ = Context::kBgp;
      return Status::Ok();
    }
    if (Tok(1) == "rip") {
      config_.rip.emplace();
      context_ = Context::kRip;
      return Status::Ok();
    }
    return Err(1, "unknown routing protocol: " + std::string(Tok(1)));
  }

  Status BeginAccessList() {
    // ip access-list extended NAME
    if (Count() != 4 || Tok(2) != "extended") {
      return Err(2, "expected: ip access-list extended NAME");
    }
    current_acl_ = std::string(Tok(3));
    config_.access_lists[current_acl_].name = current_acl_;
    context_ = Context::kAccessList;
    return Status::Ok();
  }

  Status ParseInterfaceLine() {
    InterfaceConfig& intf = config_.interfaces.back();
    if (Tok(0) == "description") {
      std::vector<std::string> words;
      for (size_t i = 1; i < Count(); ++i) {
        words.emplace_back(Tok(i));
      }
      intf.description = JoinStrings(words, " ");
      return Status::Ok();
    }
    if (Tok(0) == "shutdown") {
      intf.shutdown = true;
      return Status::Ok();
    }
    if (Tok(0) == "ip" && Count() >= 3 && Tok(1) == "address") {
      Result<Ipv4Prefix> parsed = Ipv4Prefix::Parse(Tok(2));
      if (!parsed.ok()) {
        return Err(2, parsed.error().message());
      }
      // Keep the host address (Prefix::Parse masks it off), so re-parse the
      // address part separately.
      size_t slash = Tok(2).find('/');
      Result<Ipv4Address> ip = Ipv4Address::Parse(Tok(2).substr(0, slash));
      if (!ip.ok()) {
        return Err(2, ip.error().message());
      }
      intf.address = InterfaceAddress{*ip, parsed->length()};
      return Status::Ok();
    }
    if (Tok(0) == "ip" && Count() == 4 && Tok(1) == "access-group") {
      if (Tok(3) == "in") {
        intf.acl_in = std::string(Tok(2));
      } else if (Tok(3) == "out") {
        intf.acl_out = std::string(Tok(2));
      } else {
        return Err(3, "access-group direction must be in|out");
      }
      return Status::Ok();
    }
    if (Tok(0) == "ip" && Count() == 4 && Tok(1) == "ospf" && Tok(2) == "cost") {
      if (!ParseInt(Tok(3), &intf.ospf_cost) || intf.ospf_cost <= 0) {
        return Err(3, "malformed ospf cost");
      }
      return Status::Ok();
    }
    return Err(0, "unrecognized interface command");
  }

  Status ParseNetworkStatement(std::vector<Ipv4Prefix>* networks) {
    // network A.B.C.D/len [area N]
    if (Count() < 2) {
      return Err(1, "network expects a prefix");
    }
    Result<Ipv4Prefix> prefix = Ipv4Prefix::Parse(Tok(1));
    if (!prefix.ok()) {
      return Err(1, prefix.error().message());
    }
    networks->push_back(*prefix);
    return Status::Ok();
  }

  Status ParseRedistribute(std::vector<Redistribution>* redistributes) {
    if (Count() < 2) {
      return Err(1, "redistribute expects a source");
    }
    Redistribution redist;
    if (Tok(1) == "connected") {
      redist.from = RouteSource::kConnected;
    } else if (Tok(1) == "static") {
      redist.from = RouteSource::kStatic;
    } else if (Tok(1) == "rip") {
      redist.from = RouteSource::kRip;
    } else if (Tok(1) == "ospf" || Tok(1) == "bgp") {
      redist.from = Tok(1) == "ospf" ? RouteSource::kOspf : RouteSource::kBgp;
      if (Count() < 3 || !ParseInt(Tok(2), &redist.process_id)) {
        return Err(2, "redistribute " + std::string(Tok(1)) + " expects a process id");
      }
    } else {
      return Err(1, "unknown redistribute source: " + std::string(Tok(1)));
    }
    redistributes->push_back(redist);
    return Status::Ok();
  }

  Status ParseDistributeList(std::optional<DistributeList>* dist_list) {
    // distribute-list prefix NAME
    if (Count() != 3 || Tok(1) != "prefix") {
      return Err(1, "expected: distribute-list prefix NAME");
    }
    *dist_list = DistributeList{std::string(Tok(2))};
    return Status::Ok();
  }

  Status ParseOspfLine() {
    OspfConfig& ospf = config_.ospf_processes.back();
    if (Tok(0) == "network") {
      return ParseNetworkStatement(&ospf.networks);
    }
    if (Tok(0) == "passive-interface" && Count() == 2) {
      ospf.passive_interfaces.insert(std::string(Tok(1)));
      return Status::Ok();
    }
    if (Tok(0) == "redistribute") {
      return ParseRedistribute(&ospf.redistributes);
    }
    if (Tok(0) == "distribute-list") {
      return ParseDistributeList(&ospf.distribute_list);
    }
    return Err(0, "unrecognized OSPF command");
  }

  Status ParseBgpLine() {
    BgpConfig& bgp = *config_.bgp;
    if (Tok(0) == "neighbor" && Count() == 4 && Tok(2) == "remote-as") {
      Result<Ipv4Address> ip = Ipv4Address::Parse(Tok(1));
      if (!ip.ok()) {
        return Err(1, ip.error().message());
      }
      BgpNeighbor neighbor;
      neighbor.ip = *ip;
      if (!ParseInt(Tok(3), &neighbor.remote_as)) {
        return Err(3, "malformed remote-as");
      }
      bgp.neighbors.push_back(neighbor);
      return Status::Ok();
    }
    if (Tok(0) == "network") {
      return ParseNetworkStatement(&bgp.networks);
    }
    if (Tok(0) == "redistribute") {
      return ParseRedistribute(&bgp.redistributes);
    }
    if (Tok(0) == "distribute-list") {
      return ParseDistributeList(&bgp.distribute_list);
    }
    return Err(0, "unrecognized BGP command");
  }

  Status ParseRipLine() {
    RipConfig& rip = *config_.rip;
    if (Tok(0) == "network") {
      return ParseNetworkStatement(&rip.networks);
    }
    if (Tok(0) == "redistribute") {
      return ParseRedistribute(&rip.redistributes);
    }
    if (Tok(0) == "distribute-list") {
      return ParseDistributeList(&rip.distribute_list);
    }
    return Err(0, "unrecognized RIP command");
  }

  Status ParseAclLine() {
    // permit|deny ip SRC DST where SRC/DST is `any` or a prefix.
    if (Count() != 4 || Tok(1) != "ip" ||
        (Tok(0) != "permit" && Tok(0) != "deny")) {
      return Err(0, "expected: permit|deny ip SRC DST");
    }
    AclEntry entry;
    entry.permit = Tok(0) == "permit";
    if (Tok(2) != "any") {
      Result<Ipv4Prefix> src = Ipv4Prefix::Parse(Tok(2));
      if (!src.ok()) {
        return Err(2, src.error().message());
      }
      entry.src = *src;
    }
    if (Tok(3) != "any") {
      Result<Ipv4Prefix> dst = Ipv4Prefix::Parse(Tok(3));
      if (!dst.ok()) {
        return Err(3, dst.error().message());
      }
      entry.dst = *dst;
    }
    config_.access_lists[current_acl_].entries.push_back(entry);
    return Status::Ok();
  }

  Status ParsePrefixListLine() {
    // ip prefix-list NAME permit|deny PFX [le 32]
    if (Count() < 5 || (Tok(3) != "permit" && Tok(3) != "deny")) {
      return Err(3, "expected: ip prefix-list NAME permit|deny PREFIX [le 32]");
    }
    PrefixListEntry entry;
    entry.permit = Tok(3) == "permit";
    Result<Ipv4Prefix> prefix = Ipv4Prefix::Parse(Tok(4));
    if (!prefix.ok()) {
      return Err(4, prefix.error().message());
    }
    entry.prefix = *prefix;
    if (Count() == 7 && Tok(5) == "le" && Tok(6) == "32") {
      entry.le32 = true;
    } else if (Count() != 5) {
      return Err(5, "trailing tokens in prefix-list entry");
    }
    std::string name(Tok(2));
    config_.prefix_lists[name].name = name;
    config_.prefix_lists[name].entries.push_back(entry);
    return Status::Ok();
  }

  Status ParseStaticRoute() {
    // ip route PREFIX NEXTHOP [distance]
    if (Count() < 4) {
      return Err(2, "expected: ip route PREFIX NEXTHOP [distance]");
    }
    StaticRouteConfig route;
    Result<Ipv4Prefix> prefix = Ipv4Prefix::Parse(Tok(2));
    if (!prefix.ok()) {
      return Err(2, prefix.error().message());
    }
    route.prefix = *prefix;
    Result<Ipv4Address> next_hop = Ipv4Address::Parse(Tok(3));
    if (!next_hop.ok()) {
      return Err(3, next_hop.error().message());
    }
    route.next_hop = *next_hop;
    if (Count() >= 5) {
      if (!ParseInt(Tok(4), &route.distance) || route.distance < 1 ||
          route.distance > 255) {
        return Err(4, "malformed administrative distance");
      }
    }
    config_.static_routes.push_back(route);
    return Status::Ok();
  }

  static bool ParseInt(std::string_view text, int* out) {
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), *out);
    return ec == std::errc() && ptr == text.data() + text.size();
  }

  std::string_view text_;
  ParseErrorDetail* detail_;
  Config config_;
  Context context_ = Context::kTopLevel;
  std::string current_acl_;
  std::vector<Token> tokens_;
  int line_ = 0;
};

}  // namespace

Result<Config> ParseConfig(std::string_view text, ParseErrorDetail* detail) {
  return ConfigParser(text, detail).Parse();
}

}  // namespace cpr
