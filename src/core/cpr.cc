#include "core/cpr.h"

#include <chrono>
#include <unordered_map>

#include "config/parser.h"
#include "incremental/incremental.h"
#include "lint/lint.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "simulate/simulator.h"
#include "verify/checker.h"

namespace cpr {

namespace {

// Completes provenance chains with the configuration lines each edit
// produced, joined by canonical construct key.
void JoinConfigChanges(const std::vector<EditTrace>& edit_traces,
                       obs::ProvenanceReport* provenance) {
  std::unordered_map<std::string, const EditTrace*> traces;
  for (const EditTrace& trace : edit_traces) {
    traces.emplace(trace.construct, &trace);
  }
  for (obs::ProvenanceChain& chain : provenance->chains) {
    auto it = traces.find(chain.construct);
    if (it != traces.end()) {
      chain.config_changes = it->second->changes;
    }
  }
}

}  // namespace

Result<Cpr> Cpr::FromConfigTexts(const std::vector<std::string>& texts,
                                 NetworkAnnotations annotations) {
  std::vector<Config> configs;
  configs.reserve(texts.size());
  {
    obs::StageSpan span("pipeline.parse_configs");
    for (size_t i = 0; i < texts.size(); ++i) {
      Result<Config> parsed = ParseConfig(texts[i]);
      if (!parsed.ok()) {
        return Error("config " + std::to_string(i) + ": " + parsed.error().message());
      }
      configs.push_back(std::move(parsed).value());
    }
  }
  obs::CurrentRegistry().gauge("pipeline.configs_parsed")
      .Set(static_cast<int64_t>(configs.size()));
  return FromConfigs(std::move(configs), std::move(annotations));
}

Result<Cpr> Cpr::FromConfigs(std::vector<Config> configs, NetworkAnnotations annotations) {
  obs::StageSpan span("pipeline.build_network");
  Result<Network> network = Network::Build(std::move(configs), std::move(annotations));
  if (!network.ok()) {
    return network.error();
  }
  return Cpr(std::make_unique<Network>(std::move(network).value()));
}

Result<Cpr> Cpr::FromBaseline(std::shared_ptr<incremental::RepairSession> baseline,
                              const std::vector<std::string>& texts,
                              NetworkAnnotations annotations) {
  if (baseline == nullptr) {
    return Error("incremental repair requires a baseline session");
  }
  std::vector<Config> configs;
  configs.reserve(texts.size());
  {
    obs::StageSpan span("pipeline.parse_configs");
    for (size_t i = 0; i < texts.size(); ++i) {
      Result<Config> parsed = ParseConfig(texts[i]);
      if (!parsed.ok()) {
        return Error("config " + std::to_string(i) + ": " + parsed.error().message());
      }
      configs.push_back(std::move(parsed).value());
    }
  }

  incremental::IncrementalStats stats;
  stats.attempted = true;
  const auto diff_start = std::chrono::steady_clock::now();
  auto dirty = std::make_shared<incremental::DirtySet>(incremental::ComputeDirtySet(
      baseline->network->configs(), baseline->annotations, configs, annotations));
  stats.diff_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - diff_start)
          .count();

  Result<Network> network = [&]() {
    obs::StageSpan span("pipeline.build_network");
    return Network::Build(std::move(configs), std::move(annotations));
  }();
  if (!network.ok()) {
    return network.error();
  }
  auto owned = std::make_unique<Network>(std::move(network).value());

  // Clone the session's HARC when the edit is destination-scopable; a full
  // build otherwise (the incremental path then declines in Repair(), but the
  // report still carries the differ's verdict).
  std::optional<Harc> prepared =
      incremental::PrepareHarc(*baseline, *owned, *dirty, &stats);
  Cpr cpr = prepared.has_value() ? Cpr(std::move(owned), std::move(*prepared))
                                 : Cpr(std::move(owned));
  cpr.baseline_session_ = std::move(baseline);
  cpr.baseline_dirty_ = std::move(dirty);
  cpr.incremental_stats_ = stats;
  return cpr;
}

std::vector<Policy> Cpr::InferPolicies(const InferenceOptions& options) const {
  return cpr::InferPolicies(harc_, options);
}

Result<CprReport> Cpr::Repair(const std::vector<Policy>& policies,
                              const CprOptions& options) const {
  Result<CprReport> result = RepairImpl(policies, options);
  if (result.ok()) {
    result->stats.trace_id = options.trace_id;
  }
  return result;
}

Result<CprReport> Cpr::RepairImpl(const std::vector<Policy>& policies,
                                  const CprOptions& options) const {
  CprReport report;
  report.incremental = incremental_stats_;
  report.certify_mode = certify::CertifyModeName(options.repair.certify);
  report.certify_artifact_dir = options.repair.certify_artifact_dir;

  // A request whose wall-clock budget is already gone — zero, negative, or
  // consumed while queued — must not start any work, not even the lint
  // gate: the caller gets a clean kDeadlineExceeded report immediately.
  if (options.repair.deadline.Expired()) {
    report.status = RepairStatus::kDeadlineExceeded;
    obs::CurrentRegistry().counter("repair.deadline_rejects").Increment();
    return report;
  }

  // Pre-repair lint gate: a config that references undefined constructs or
  // carries an inconsistent topology produces a wrong HARC and therefore a
  // confidently wrong repair — refuse it up front (paper §9 offloads this to
  // Batfish; lint/lint.h is our equivalent).
  if (options.lint_mode != LintMode::kOff) {
    obs::StageSpan lint_span("pipeline.lint");
    report.lint_report = lint::Run(network_->configs());
    obs::Registry& registry = obs::CurrentRegistry();
    registry.counter("lint.findings")
        .Add(static_cast<int64_t>(report.lint_report.diagnostics.size()));
    registry.counter("lint.errors").Add(report.lint_report.errors);
    registry.counter("lint.warnings").Add(report.lint_report.warnings);
    report.stats.lint_errors = report.lint_report.errors;
    report.stats.lint_warnings = report.lint_report.warnings;
    if (options.lint_mode == LintMode::kGate && report.lint_report.errors > 0) {
      report.status = RepairStatus::kLintRejected;
      return report;
    }
  }

  // Incremental re-repair (DESIGN.md §12): when FromBaseline attached a
  // retained session, reuse every clean group's baseline verdict, re-solve
  // only the differ's dirty groups with warm-started solvers, and re-verify
  // the result concretely (the engine falls back to a full repair on the
  // patched snapshot if anything is still violated). When the engine
  // declines — global dirt, changed policies, clone-incompatible snapshot —
  // the ordinary pipeline below runs unchanged.
  if (baseline_session_ != nullptr) {
    obs::StageSpan incremental_span("pipeline.incremental");
    Result<incremental::IncrementalOutcome> inc = incremental::TryIncrementalRepair(
        *baseline_session_, *network_, harc_, *baseline_dirty_, policies,
        options.repair, incremental_stats_);
    if (!inc.ok()) {
      return inc.error();
    }
    report.incremental = inc->stats;
    obs::Registry& registry = obs::CurrentRegistry();
    registry.counter("incremental.attempts").Increment();
    registry.counter("incremental.groups_reused").Add(inc->stats.groups_reused);
    registry.counter("incremental.groups_resolved").Add(inc->stats.groups_resolved);
    registry.counter("incremental.warm_hits").Add(inc->stats.warm_hits);
    if (inc->stats.fell_back) {
      registry.counter("incremental.fallbacks").Increment();
    }
    if (inc->result.has_value()) {
      registry.counter("incremental.applied").Increment();
      incremental::IncrementalRepairResult& result = *inc->result;
      report.status = result.status;
      report.predicted_cost = result.predicted_cost;
      report.stats = std::move(result.stats);
      report.stats.lint_errors = report.lint_report.errors;
      report.stats.lint_warnings = report.lint_report.warnings;
      report.edits = std::move(result.edits);
      report.provenance = std::move(result.provenance);
      report.patched_configs = std::move(result.patched_configs);
      report.patched_annotations = std::move(result.patched_annotations);
      report.change_log = std::move(result.change_log);
      report.diff_text = std::move(result.diff_text);
      report.lines_changed = result.lines_changed;
      JoinConfigChanges(result.edit_traces, &report.provenance);
      Status closed = CloseLoop(policies, options, std::move(result.rebuilt_network),
                                std::move(result.rebuilt_harc), &report);
      if (!closed.ok()) {
        return closed.error();
      }
      return report;
    }
  }

  // Symmetry-quotient compression pre-pass (DESIGN.md §11): solve the
  // policies on a small quotient network, lift the edits to every concrete
  // router, re-verify concretely, and fall back to uncompressed repair for
  // anything the lifted patch did not fix. When the pre-pass declines (too
  // small, not symmetric enough, unsupported policy mix) the ordinary path
  // below runs unchanged.
  if (options.repair.compress.mode != CompressMode::kOff &&
      options.repair.granularity == Granularity::kPerDst) {
    Result<compress::CompressionOutcome> compressed =
        compress::TryCompressedRepair(*network_, harc_, policies, options.repair);
    if (!compressed.ok()) {
      return compressed.error();
    }
    report.compression = compressed->stats;
    if (compressed->result.has_value()) {
      compress::CompressedRepairResult& result = *compressed->result;
      report.status = result.status;
      report.predicted_cost = result.predicted_cost;
      report.stats = std::move(result.stats);
      report.stats.lint_errors = report.lint_report.errors;
      report.stats.lint_warnings = report.lint_report.warnings;
      report.edits = std::move(result.edits);
      report.provenance = std::move(result.provenance);
      report.patched_configs = std::move(result.patched_configs);
      report.patched_annotations = std::move(result.patched_annotations);
      report.change_log = std::move(result.change_log);
      report.diff_text = std::move(result.diff_text);
      report.lines_changed = result.lines_changed;
      JoinConfigChanges(result.edit_traces, &report.provenance);
      Status closed = CloseLoop(policies, options, std::move(result.rebuilt_network),
                                std::move(result.rebuilt_harc), &report);
      if (!closed.ok()) {
        return closed.error();
      }
      return report;
    }
  }

  Result<RepairOutcome> outcome = [&]() {
    obs::StageSpan repair_span("pipeline.repair");
    if (!options.trace_id.empty()) {
      repair_span.Annotate("trace_id", options.trace_id);
    }
    return ComputeRepair(harc_, policies, options.repair);
  }();
  if (!outcome.ok()) {
    return outcome.error();
  }
  report.status = outcome->status;
  report.predicted_cost = outcome->predicted_cost;
  report.stats = outcome->stats;
  // The repair engine's stats start from zero; restore the gate's counts.
  report.stats.lint_errors = report.lint_report.errors;
  report.stats.lint_warnings = report.lint_report.warnings;
  report.edits = outcome->edits;
  // Copy provenance before the no-repair early return so unsat cores from
  // fully-failed runs still reach `cpr explain`.
  report.provenance = outcome->provenance;
  if (!outcome->HasRepair()) {
    return report;  // kUnsat / kTimeout / kUnsupported / kError: nothing to
                    // translate.
  }
  // kPartial proceeds: the solved problems' edits are translated and
  // re-verified, and the failed problems' policies simply show up in
  // residual_graph_violations (Sound() stays false).

  Result<TranslationResult> translation = [&]() {
    obs::StageSpan translate_span("pipeline.translate");
    return TranslateEdits(*network_, outcome->edits);
  }();
  if (!translation.ok()) {
    return translation.error();
  }
  report.patched_configs = translation->patched_configs;
  report.patched_annotations = translation->annotations;
  report.change_log = translation->change_log;
  report.diff_text = translation->DiffText(*network_);
  report.lines_changed = translation->LinesChanged();

  JoinConfigChanges(translation->edit_traces, &report.provenance);

  Status closed = CloseLoop(policies, options, nullptr, nullptr, &report);
  if (!closed.ok()) {
    return closed.error();
  }
  return report;
}

Status Cpr::CloseLoop(const std::vector<Policy>& policies, const CprOptions& options,
                      std::unique_ptr<Network> prebuilt_network,
                      std::unique_ptr<Harc> prebuilt_harc, CprReport* report) const {
  // Close the loop: rebuild the network and HARC from the patched
  // configurations and re-check every policy. The compression pre-pass hands
  // over the rebuilt pair when its lifted patch already re-verified clean.
  std::unique_ptr<Network> rebuilt = std::move(prebuilt_network);
  if (rebuilt == nullptr) {
    obs::StageSpan rebuild_span("pipeline.rebuild");
    Result<Network> built =
        Network::Build(report->patched_configs, report->patched_annotations);
    if (!built.ok()) {
      return Error("patched configurations no longer form a valid network: " +
                   built.error().message());
    }
    rebuilt = std::make_unique<Network>(std::move(built).value());
  }
  std::unique_ptr<Harc> rebuilt_harc = std::move(prebuilt_harc);
  {
    obs::StageSpan reverify_span("pipeline.reverify");
    if (rebuilt_harc == nullptr) {
      rebuilt_harc = std::make_unique<Harc>(Harc::Build(*rebuilt));
    }
    report->residual_graph_violations = FindViolations(*rebuilt_harc, policies);
  }
  if (options.validate_with_simulator) {
    obs::StageSpan simulate_span("pipeline.simulate");
    report->residual_simulation_violations =
        FindSimulationViolations(*rebuilt, policies, options.simulator_failure_cap);
  }

  // Post-translate lint audit: the patched configurations must introduce no
  // error/warning finding the originals did not already have. Any fresh
  // finding is a translator defect surfaced for free.
  if (options.lint_mode != LintMode::kOff) {
    obs::StageSpan audit_span("pipeline.lint_audit");
    lint::Report patched_lint = lint::Run(report->patched_configs);
    report->lint_new_findings = lint::NewFindings(report->lint_report, patched_lint);
    report->stats.lint_audit_new_findings =
        static_cast<int>(report->lint_new_findings.size());
    obs::CurrentRegistry()
        .counter("lint.audit_new_findings")
        .Add(static_cast<int64_t>(report->lint_new_findings.size()));
  }

  // Traffic classes impacted: tcETGs whose edge set changed (§8.3). The
  // universes enumerate candidate edges identically because devices, links,
  // subnets, and processes are unchanged by translation.
  const int subnet_count = harc_.SubnetCount();
  for (SubnetId s = 0; s < subnet_count; ++s) {
    for (SubnetId d = 0; d < subnet_count; ++d) {
      if (s == d) {
        continue;
      }
      const Etg& before = harc_.tcetg(s, d);
      const Etg& after = rebuilt_harc->tcetg(s, d);
      for (CandidateEdgeId e = 0; e < harc_.universe().EdgeCount(); ++e) {
        if (before.IsPresent(e) != after.IsPresent(e)) {
          ++report->traffic_classes_impacted;
          break;
        }
      }
    }
  }

  return Status::Ok();
}

}  // namespace cpr
