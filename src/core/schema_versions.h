// One home for every JSON surface's schema version.
//
// The repo emits several independently-consumed JSON documents: the
// --stats-json run record, `cpr lint --json`, `cpr explain --json`
// (provenance), the persisted *.cert.json certificate artifacts, the
// event-log JSONL stream, and the flight-recorder dump. Each evolves on its
// own cadence, so each has its own version constant — but the integer
// literals all live HERE, not scattered through the writers, so a surface
// cannot silently drift from its validator or its documentation. Bump the
// constant and the matching schema comment (core/stats_report.h,
// obs/provenance.h, certify/artifact.h, obs/event_log.h,
// obs/flight_recorder.h) in the same change.
//
// This header is pure constants with no dependencies; any layer (including
// the otherwise dependency-free obs library) may include it.

#ifndef CPR_SRC_CORE_SCHEMA_VERSIONS_H_
#define CPR_SRC_CORE_SCHEMA_VERSIONS_H_

namespace cpr {

// The --stats-json run document (core/stats_report.h).
inline constexpr int kStatsSchemaVersion = 1;

// The "lint" stats section and `cpr lint --json` (lint/lint.h rule catalog).
inline constexpr int kLintSchemaVersion = 1;

// The "provenance" stats section and `cpr explain --json`
// (obs/provenance.h); both delegate to obs::WriteProvenanceFields.
inline constexpr int kProvenanceSchemaVersion = 1;

// The "certify" stats section and persisted *.cert.json artifacts
// (certify/artifact.h).
inline constexpr int kCertifySchemaVersion = 1;

// One event-log JSONL line (obs/event_log.h); every line carries it as "v".
inline constexpr int kEventSchemaVersion = 1;

// The flight-recorder dump document (obs/flight_recorder.h).
inline constexpr int kFlightRecorderSchemaVersion = 1;

}  // namespace cpr

#endif  // CPR_SRC_CORE_SCHEMA_VERSIONS_H_
