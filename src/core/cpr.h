// CPR — Control Plane Repair: the end-to-end pipeline (paper §3).
//
//   configurations ──parse──▶ Network ──Algorithm 1──▶ HARC
//        ▲                                               │
//        │                                     MaxSMT repair (§5)
//        │                                               │
//   patched configs ◀──translate (§6)── construct edits ─┘
//
// After translation the pipeline closes the loop the paper closes by
// construction: it re-parses the patched configurations, rebuilds the HARC,
// re-verifies every policy graph-theoretically, and (optionally) validates
// them again on the control-plane simulator under failure enumeration.

#ifndef CPR_SRC_CORE_CPR_H_
#define CPR_SRC_CORE_CPR_H_

#include <memory>
#include <string>
#include <vector>

#include "arc/harc.h"
#include "compress/compress.h"
#include "incremental/stats.h"
#include "lint/lint.h"
#include "netbase/result.h"
#include "repair/repair.h"
#include "topo/network.h"
#include "translate/translator.h"
#include "verify/inference.h"
#include "verify/policy.h"

namespace cpr {

namespace incremental {
struct DirtySet;
struct RepairSession;
}  // namespace incremental

// How the pre-repair lint gate treats the input configurations.
enum class LintMode {
  kGate,      // Default: refuse to repair when lint reports errors
              // (RepairStatus::kLintRejected).
  kWarnOnly,  // Lint, record findings, proceed regardless.
  kOff,       // Skip linting (and the post-translate audit) entirely.
};

struct CprOptions {
  RepairOptions repair;
  // Correlation ID for this repair (16 hex chars when set; cprd mints one at
  // admission, the CLI accepts --trace-id). Echoed into the stage-span tree,
  // RepairStats, the stats-json "run" section, and every event-log line the
  // serving layer emits for the request — one grep joins all four surfaces.
  std::string trace_id;
  // Pre-repair lint gate + post-translate lint audit (lint/lint.h).
  LintMode lint_mode = LintMode::kGate;
  // Re-check the repaired network on the control-plane simulator.
  bool validate_with_simulator = true;
  // Maximum simultaneous failures the simulator enumerates for PC1/PC2.
  int simulator_failure_cap = 2;
};

struct CprReport {
  RepairStatus status = RepairStatus::kSuccess;
  // Construct-level changes and their configuration realization.
  RepairEdits edits;
  std::vector<Config> patched_configs;
  NetworkAnnotations patched_annotations;
  std::vector<std::string> change_log;
  std::string diff_text;

  // Metrics (the paper's evaluation measures).
  int64_t predicted_cost = 0;       // MaxSMT objective (§5.2).
  int lines_changed = 0;            // Measured via config diff (§8.3).
  int traffic_classes_impacted = 0; // tcETGs whose edge set changed (§8.3).
  RepairStats stats;

  // Symmetry-quotient compression pre-pass telemetry (DESIGN.md §11):
  // whether it ran, what ratio it achieved, and how much fell back to the
  // uncompressed path. attempted == false when CompressMode::kOff.
  compress::CompressionStats compression;

  // Certification echo (DESIGN.md §13): the requested mode ("off" | "log" |
  // "auto" | "on") and the artifact directory, for the stats-json "certify"
  // section.
  // The verdict counts live in stats.certify_*.
  std::string certify_mode = "off";
  std::string certify_artifact_dir;

  // Incremental re-repair telemetry (DESIGN.md §12): dirty-set size, group
  // verdict/edit reuse, warm solver hits, and whether the scoped result fell
  // back to a full repair. attempted == false unless the pipeline was built
  // with FromBaseline.
  incremental::IncrementalStats incremental;

  // Provenance: one chain per emitted edit (policy → problem → flipped soft
  // constraint → construct → configuration lines) plus per-problem unsat
  // cores. The config-change legs are joined in from the translator's edit
  // traces by construct key; `cpr explain` renders this report.
  obs::ProvenanceReport provenance;

  // Policies still violated after the repair — both must be empty for a
  // sound repair.
  std::vector<Policy> residual_graph_violations;
  std::vector<Policy> residual_simulation_violations;

  // Lint gate findings on the *input* configurations (empty when
  // LintMode::kOff), and the post-translate audit: error/warning findings
  // the patched configurations have that the originals did not. A correct
  // translation leaves `lint_new_findings` empty — a free end-to-end
  // regression oracle for the translator.
  lint::Report lint_report;
  std::vector<lint::Diagnostic> lint_new_findings;

  // A kPartial repair is never sound: its failed problems' policies remain
  // violated (and appear in residual_graph_violations), but the merged
  // patch for the solved problems is still valid and worth applying.
  bool Sound() const {
    return (status == RepairStatus::kSuccess || status == RepairStatus::kNoViolations) &&
           residual_graph_violations.empty() && residual_simulation_violations.empty();
  }
};

class Cpr {
 public:
  // Builds the pipeline from raw configuration texts.
  static Result<Cpr> FromConfigTexts(const std::vector<std::string>& texts,
                                     NetworkAnnotations annotations = {});
  static Result<Cpr> FromConfigs(std::vector<Config> configs,
                                 NetworkAnnotations annotations = {});

  // Builds the pipeline for a new snapshot of the same lineage as a retained
  // RepairSession (src/incremental). The session's configurations are diffed
  // against `texts`; when the edit is destination-scopable the session's
  // HARC is cloned with only dirty destinations rebuilt, and Repair() runs
  // the incremental path: clean groups reuse their baseline verdicts, dirty
  // groups re-solve with warm-started solvers, and the result is re-verified
  // concretely (falling back to a full repair on any residual violation).
  static Result<Cpr> FromBaseline(std::shared_ptr<incremental::RepairSession> baseline,
                                  const std::vector<std::string>& texts,
                                  NetworkAnnotations annotations = {});

  const Network& network() const { return *network_; }
  const Harc& harc() const { return harc_; }

  // Infers the PC1/PC3 policies the current configurations satisfy (§8).
  std::vector<Policy> InferPolicies(const InferenceOptions& options = {}) const;

  // Repairs the network to satisfy `policies`; returns the patched
  // configurations, metrics, and residual-violation checks.
  Result<CprReport> Repair(const std::vector<Policy>& policies,
                           const CprOptions& options = {}) const;

 private:
  // The network lives behind a stable pointer: the HARC's universe refers to
  // it, and Cpr itself must stay movable.
  explicit Cpr(std::unique_ptr<Network> network)
      : network_(std::move(network)), harc_(Harc::Build(*network_)) {}

  // FromBaseline's clone path: the HARC was prepared from the session
  // instead of built from scratch.
  Cpr(std::unique_ptr<Network> network, Harc harc)
      : network_(std::move(network)), harc_(std::move(harc)) {}

  // Repair() minus the trace-id stamping the public wrapper applies to every
  // successful return path.
  Result<CprReport> RepairImpl(const std::vector<Policy>& policies,
                               const CprOptions& options) const;

  // Shared tail of Repair(): rebuild (unless the compression pre-pass hands
  // over an already-rebuilt network/HARC), re-verify, simulate, lint-audit,
  // and count impacted traffic classes.
  Status CloseLoop(const std::vector<Policy>& policies, const CprOptions& options,
                   std::unique_ptr<Network> prebuilt_network,
                   std::unique_ptr<Harc> prebuilt_harc, CprReport* report) const;

  std::unique_ptr<Network> network_;
  Harc harc_;

  // Set by FromBaseline: the retained session, the differ's verdict on this
  // snapshot, and the preparation stats (attempted/cloned/dirty counts) that
  // seed the report's incremental section even when the path declines.
  std::shared_ptr<incremental::RepairSession> baseline_session_;
  std::shared_ptr<const incremental::DirtySet> baseline_dirty_;
  incremental::IncrementalStats incremental_stats_;
};

}  // namespace cpr

#endif  // CPR_SRC_CORE_CPR_H_
