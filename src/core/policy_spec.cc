#include "core/policy_spec.h"

#include "netbase/string_util.h"

namespace cpr {

namespace {

bool IsCommentOrBlank(std::string_view line) {
  std::string_view trimmed = TrimWhitespace(line);
  return trimmed.empty() || trimmed[0] == '#';
}

Error LineError(int line_number, const std::string& message) {
  return Error("policy spec line " + std::to_string(line_number) + ": " + message);
}

}  // namespace

Result<NetworkAnnotations> ParseSpecAnnotations(std::string_view text) {
  NetworkAnnotations annotations;
  int line_number = 0;
  for (std::string_view line : SplitLines(text)) {
    ++line_number;
    if (IsCommentOrBlank(line)) {
      continue;
    }
    std::vector<std::string_view> tokens = SplitTokens(line);
    if (tokens[0] != "waypoint-link") {
      continue;  // Policies are handled in phase 2.
    }
    if (tokens.size() != 3) {
      return LineError(line_number, "expected: waypoint-link DEVICE DEVICE");
    }
    annotations.waypoint_links.insert({std::string(tokens[1]), std::string(tokens[2])});
  }
  return annotations;
}

Result<std::vector<Policy>> ParseSpecPolicies(std::string_view text,
                                              const Network& network) {
  std::vector<Policy> policies;
  int line_number = 0;
  for (std::string_view line : SplitLines(text)) {
    ++line_number;
    if (IsCommentOrBlank(line)) {
      continue;
    }
    std::vector<std::string_view> tokens = SplitTokens(line);
    if (tokens[0] == "waypoint-link") {
      continue;  // Annotation, consumed in phase 1.
    }
    // All policies start: <kind> SRC -> DST
    if (tokens.size() < 4 || tokens[2] != "->") {
      return LineError(line_number, "expected: <kind> SRC -> DST ...");
    }
    auto resolve_subnet = [&](std::string_view prefix_text) -> Result<SubnetId> {
      Result<Ipv4Prefix> prefix = Ipv4Prefix::Parse(prefix_text);
      if (!prefix.ok()) {
        return prefix.error();
      }
      auto id = network.FindSubnet(*prefix);
      if (!id.has_value()) {
        return Error("no subnet " + prefix->ToString() + " in the network");
      }
      return *id;
    };
    Result<SubnetId> src = resolve_subnet(tokens[1]);
    if (!src.ok()) {
      return LineError(line_number, src.error().message());
    }
    Result<SubnetId> dst = resolve_subnet(tokens[3]);
    if (!dst.ok()) {
      return LineError(line_number, dst.error().message());
    }

    if (tokens[0] == "always-blocked") {
      if (tokens.size() != 4) {
        return LineError(line_number, "trailing tokens after always-blocked policy");
      }
      policies.push_back(Policy::AlwaysBlocked(*src, *dst));
    } else if (tokens[0] == "always-waypoint") {
      if (tokens.size() != 4) {
        return LineError(line_number, "trailing tokens after always-waypoint policy");
      }
      policies.push_back(Policy::AlwaysWaypoint(*src, *dst));
    } else if (tokens[0] == "reachable") {
      int k = 1;
      if (tokens.size() == 6 && tokens[4] == "k") {
        k = std::atoi(std::string(tokens[5]).c_str());
        if (k < 1) {
          return LineError(line_number, "k must be a positive integer");
        }
      } else if (tokens.size() != 4) {
        return LineError(line_number, "expected: reachable SRC -> DST [k N]");
      }
      policies.push_back(Policy::Reachability(*src, *dst, k));
    } else if (tokens[0] == "isolated") {
      // isolated SRC -> DST with SRC2 -> DST2
      if (tokens.size() != 8 || tokens[4] != "with" || tokens[6] != "->") {
        return LineError(line_number, "expected: isolated SRC -> DST with SRC2 -> DST2");
      }
      Result<SubnetId> src2 = resolve_subnet(tokens[5]);
      if (!src2.ok()) {
        return LineError(line_number, src2.error().message());
      }
      Result<SubnetId> dst2 = resolve_subnet(tokens[7]);
      if (!dst2.ok()) {
        return LineError(line_number, dst2.error().message());
      }
      policies.push_back(Policy::Isolated(*src, *dst, *src2, *dst2));
    } else if (tokens[0] == "primary-path") {
      if (tokens.size() < 6 || tokens[4] != "via") {
        return LineError(line_number, "expected: primary-path SRC -> DST via DEV...");
      }
      std::vector<DeviceId> path;
      for (size_t i = 5; i < tokens.size(); ++i) {
        auto device = network.FindDevice(std::string(tokens[i]));
        if (!device.has_value()) {
          return LineError(line_number, "unknown device " + std::string(tokens[i]));
        }
        path.push_back(*device);
      }
      policies.push_back(Policy::PrimaryPath(*src, *dst, std::move(path)));
    } else {
      return LineError(line_number, "unknown policy kind: " + std::string(tokens[0]));
    }
  }
  return policies;
}

std::string FormatPolicySpec(const std::vector<Policy>& policies, const Network& network) {
  std::string out;
  const auto& subnets = network.subnets();
  for (const Policy& policy : policies) {
    const std::string src = subnets[static_cast<size_t>(policy.src)].prefix.ToString();
    const std::string dst = subnets[static_cast<size_t>(policy.dst)].prefix.ToString();
    switch (policy.pc) {
      case PolicyClass::kAlwaysBlocked:
        out += "always-blocked " + src + " -> " + dst + "\n";
        break;
      case PolicyClass::kAlwaysWaypoint:
        out += "always-waypoint " + src + " -> " + dst + "\n";
        break;
      case PolicyClass::kReachability:
        out += "reachable " + src + " -> " + dst + " k " + std::to_string(policy.k) + "\n";
        break;
      case PolicyClass::kPrimaryPath: {
        out += "primary-path " + src + " -> " + dst + " via";
        for (DeviceId d : policy.primary_path) {
          out += " " + network.devices()[static_cast<size_t>(d)].name;
        }
        out += "\n";
        break;
      }
      case PolicyClass::kIsolation:
        out += "isolated " + src + " -> " + dst + " with " +
               subnets[static_cast<size_t>(policy.src2)].prefix.ToString() + " -> " +
               subnets[static_cast<size_t>(policy.dst2)].prefix.ToString() + "\n";
        break;
    }
  }
  return out;
}

}  // namespace cpr
