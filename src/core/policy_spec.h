// Textual policy specification.
//
// Operators hand CPR a policy file next to their configuration directory:
//
//   # comments and blank lines are ignored
//   waypoint-link B C                                  # firewall annotation
//   always-blocked  10.2.0.0/16 -> 10.30.0.0/16        # PC1
//   always-waypoint 10.2.0.0/16 -> 10.20.0.0/16        # PC2
//   reachable       10.2.0.0/16 -> 10.20.0.0/16 k 2    # PC3
//   primary-path    10.1.0.0/16 -> 10.20.0.0/16 via A B C   # PC4
//
// Annotations (waypoint-link) are extracted before the network is built —
// they are inputs to topology construction — while policies resolve their
// subnets and devices against the built network.

#ifndef CPR_SRC_CORE_POLICY_SPEC_H_
#define CPR_SRC_CORE_POLICY_SPEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "netbase/result.h"
#include "topo/network.h"
#include "verify/policy.h"

namespace cpr {

// Phase 1: waypoint annotations (usable before the network exists).
Result<NetworkAnnotations> ParseSpecAnnotations(std::string_view text);

// Phase 2: policies, resolved against the network. Unknown subnets or
// devices are errors carrying the line number.
Result<std::vector<Policy>> ParseSpecPolicies(std::string_view text,
                                              const Network& network);

// Renders policies back into the specification format (inference output).
std::string FormatPolicySpec(const std::vector<Policy>& policies, const Network& network);

}  // namespace cpr

#endif  // CPR_SRC_CORE_POLICY_SPEC_H_
