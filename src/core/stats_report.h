// Assembles the --stats-json document: one self-describing JSON object per
// pipeline run, combining run metadata, the stage-span trace, every registry
// instrument, and (for repair runs) the per-problem reports with their
// solver-internal counters.
//
// Schema (schema_version 1; additions are append-only):
//
//   {
//     "schema_version": 1,
//     "run": { "command", "config_dir", "policy_file", "backend",
//              "granularity", "threads", "status", "wall_seconds",
//              "trace_id" },
//     "stages": [ { "name", "parent", "thread", "start_seconds",
//                   "duration_seconds", "args"? }, ... ],
//     "counters": { "<name>": <int>, ... },
//     "gauges": { "<name>": <int>, ... },
//     "histograms": { "<name>": { "count", "sum_seconds", "min_seconds",
//                                 "max_seconds", "p50_seconds",
//                                 "p90_seconds", "p99_seconds" }, ... },
//     "repair": {                      // present only when a repair ran
//       "status", "predicted_cost", "lines_changed",
//       "traffic_classes_impacted", "problems_formulated",
//       "problems_solved", "problems_failed", "destinations_skipped",
//       "encode_seconds", "solve_seconds_sum", "solve_wall_seconds",
//       "wall_seconds", "bool_vars", "hard_constraints",
//       "soft_constraints", "residual_graph_violations",
//       "residual_simulation_violations",
//       "solver_counter_totals": { "<name>": <double>, ... },
//       "problems": [ { "dsts", "status", "attempts", "backend",
//                       "solve_seconds", "cost", "message",
//                       "certification", "certify_message",
//                       "solver_counters": { ... },
//                       "violated_softs": [ { "label", "weight" }, ... ],
//                       "unsat_core": [ "<label>", ... ] }, ... ]
//     },
//     "certify": {                     // present only when a repair ran
//       "schema_version": 1, "mode", "checked", "verified", "failed",
//       "artifacts", "artifact_dir"
//     },
//     "provenance": {                  // present only when a repair ran
//       "schema_version": 1, "edits_total", "edits_attributed",
//       "orphan_edits": [ ... ], "chains": [ ... ], "unsat_cores": [ ... ]
//       // field layout shared with `cpr explain --json`
//       // (obs/provenance.h)
//     }
//   }
//
// The obs library stays dependency-free; this sink is the only place that
// knows both the obs types and the pipeline report types.

#ifndef CPR_SRC_CORE_STATS_REPORT_H_
#define CPR_SRC_CORE_STATS_REPORT_H_

#include <string>

#include "core/cpr.h"
#include "netbase/result.h"

namespace cpr {

// Run metadata echoed into the "run" object verbatim.
struct StatsRunInfo {
  std::string command;      // CLI subcommand ("repair", "verify", ...).
  std::string config_dir;
  std::string policy_file;
  std::string backend;
  std::string granularity;
  int threads = 1;
  std::string status;       // Final pipeline status string.
  double wall_seconds = 0;  // End-to-end process wall time.
  std::string trace_id;     // Correlation ID (empty outside cprd/--trace-id).
};

// Serializes the current global registry + trace (and the repair report, when
// non-null) into the schema above. Deterministic for a given state: maps are
// sorted by name.
std::string BuildStatsJson(const StatsRunInfo& run, const CprReport* report);

// Writes `json` to `path` (creating/truncating). Fails with the OS error.
Status WriteStatsJson(const std::string& path, const std::string& json);

}  // namespace cpr

#endif  // CPR_SRC_CORE_STATS_REPORT_H_
