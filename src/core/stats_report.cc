#include "core/stats_report.h"

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/schema_versions.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/span.h"

namespace cpr {

namespace {

void WriteRun(obs::JsonWriter* w, const StatsRunInfo& run) {
  w->Key("run").BeginObject();
  w->Key("command").String(run.command);
  w->Key("config_dir").String(run.config_dir);
  w->Key("policy_file").String(run.policy_file);
  w->Key("backend").String(run.backend);
  w->Key("granularity").String(run.granularity);
  w->Key("threads").Int(run.threads);
  w->Key("status").String(run.status);
  w->Key("wall_seconds").Double(run.wall_seconds);
  w->Key("trace_id").String(run.trace_id);
  w->EndObject();
}

void WriteStages(obs::JsonWriter* w) {
  w->Key("stages").BeginArray();
  for (const obs::SpanRecord& span : obs::CurrentTrace().Records()) {
    w->BeginObject();
    w->Key("name").String(span.name);
    w->Key("parent").Int(span.parent);
    w->Key("thread").Int(span.thread);
    w->Key("start_seconds").Double(span.start_seconds);
    w->Key("duration_seconds").Double(span.duration_seconds);
    if (!span.args.empty()) {
      w->Key("args").BeginObject();
      for (const auto& [key, value] : span.args) {
        w->Key(key).String(value);
      }
      w->EndObject();
    }
    w->EndObject();
  }
  w->EndArray();
}

void WriteInstruments(obs::JsonWriter* w) {
  obs::Snapshot snapshot = obs::CurrentRegistry().TakeSnapshot();
  w->Key("counters").BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    w->Key(name).Int(value);
  }
  w->EndObject();
  w->Key("gauges").BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    w->Key(name).Int(value);
  }
  w->EndObject();
  w->Key("histograms").BeginObject();
  for (const auto& [name, data] : snapshot.histograms) {
    w->Key(name).BeginObject();
    w->Key("count").Int(data.count);
    w->Key("sum_seconds").Double(data.sum_seconds);
    w->Key("min_seconds").Double(data.min_seconds);
    w->Key("max_seconds").Double(data.max_seconds);
    w->Key("p50_seconds").Double(data.QuantileSeconds(0.50));
    w->Key("p90_seconds").Double(data.QuantileSeconds(0.90));
    w->Key("p99_seconds").Double(data.QuantileSeconds(0.99));
    w->EndObject();
  }
  w->EndObject();
}

void WriteCounterPairs(obs::JsonWriter* w,
                       const std::vector<std::pair<std::string, double>>& pairs) {
  // Per-problem counters arrive in backend order; sort for a deterministic
  // document.
  std::map<std::string, double> sorted(pairs.begin(), pairs.end());
  w->BeginObject();
  for (const auto& [name, value] : sorted) {
    w->Key(name).Double(value);
  }
  w->EndObject();
}

void WriteRepair(obs::JsonWriter* w, const CprReport& report) {
  const RepairStats& stats = report.stats;
  w->Key("repair").BeginObject();
  w->Key("trace_id").String(stats.trace_id);
  w->Key("status").String(RepairStatusName(report.status));
  w->Key("predicted_cost").Int(report.predicted_cost);
  w->Key("lines_changed").Int(report.lines_changed);
  w->Key("traffic_classes_impacted").Int(report.traffic_classes_impacted);
  w->Key("problems_formulated").Int(stats.problems_formulated);
  w->Key("problems_solved").Int(stats.problems_solved);
  w->Key("problems_failed").Int(stats.problems_failed);
  w->Key("destinations_skipped").Int(stats.destinations_skipped);
  w->Key("encode_seconds").Double(stats.encode_seconds);
  w->Key("solve_seconds_sum").Double(stats.solve_seconds);
  w->Key("solve_wall_seconds").Double(stats.solve_wall_seconds);
  w->Key("wall_seconds").Double(stats.wall_seconds);
  w->Key("bool_vars").Int(stats.bool_vars);
  w->Key("hard_constraints").Int(stats.hard_constraints);
  w->Key("soft_constraints").Int(stats.soft_constraints);
  w->Key("residual_graph_violations")
      .Int(static_cast<int64_t>(report.residual_graph_violations.size()));
  w->Key("residual_simulation_violations")
      .Int(static_cast<int64_t>(report.residual_simulation_violations.size()));
  w->Key("lint_errors").Int(stats.lint_errors);
  w->Key("lint_warnings").Int(stats.lint_warnings);
  w->Key("lint_audit_new_findings").Int(stats.lint_audit_new_findings);
  w->Key("solver_counter_totals");
  WriteCounterPairs(w, stats.solver_counter_totals);
  w->Key("problems").BeginArray();
  for (const ProblemReport& problem : stats.problem_reports) {
    w->BeginObject();
    w->Key("dsts").BeginArray();
    for (SubnetId dst : problem.dsts) {
      w->Int(dst);
    }
    w->EndArray();
    w->Key("status").String(MaxSmtStatusName(problem.status));
    w->Key("attempts").Int(problem.attempts);
    w->Key("backend").String(problem.backend);
    w->Key("solve_seconds").Double(problem.solve_seconds);
    w->Key("cost").Int(problem.cost);
    w->Key("message").String(problem.message);
    w->Key("certification").String(CertificationName(problem.certification));
    w->Key("certify_message").String(problem.certify_message);
    w->Key("solver_counters");
    WriteCounterPairs(w, problem.solver_counters);
    w->Key("violated_softs").BeginArray();
    for (const auto& [label, weight] : problem.violated_softs) {
      w->BeginObject();
      w->Key("label").String(label);
      w->Key("weight").Int(weight);
      w->EndObject();
    }
    w->EndArray();
    w->Key("unsat_core").BeginArray();
    for (const std::string& label : problem.unsat_core_labels) {
      w->String(label);
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

void WriteDiagnostics(obs::JsonWriter* w, const std::vector<lint::Diagnostic>& diags) {
  w->BeginArray();
  for (const lint::Diagnostic& d : diags) {
    w->BeginObject();
    w->Key("rule").String(d.rule);
    w->Key("severity").String(lint::SeverityName(d.severity));
    w->Key("device").String(d.device);
    w->Key("path").String(d.path);
    w->Key("message").String(d.message);
    w->Key("hint").String(d.hint);
    w->EndObject();
  }
  w->EndArray();
}

// Symmetry-quotient compression pre-pass telemetry (DESIGN.md §11).
// quotient_ratio is 1.0 whenever compression did not apply — the
// clean-fallback signature check.sh asserts on asymmetric input.
void WriteCompression(obs::JsonWriter* w, const CprReport& report) {
  const compress::CompressionStats& c = report.compression;
  w->Key("compression").BeginObject();
  w->Key("attempted").Bool(c.attempted);
  w->Key("applied").Bool(c.applied);
  w->Key("skipped_reason").String(c.skipped_reason);
  w->Key("routers").Int(c.routers);
  w->Key("base_blocks").Int(c.base_blocks);
  w->Key("quotient_ratio").Double(c.quotient_ratio);
  w->Key("groups_total").Int(c.groups_total);
  w->Key("groups_compressed").Int(c.groups_compressed);
  w->Key("groups_fallback").Int(c.groups_fallback);
  w->Key("abstract_edits").Int(c.abstract_edits);
  w->Key("lifted_edits").Int(c.lifted_edits);
  w->Key("lift_verify_failures").Int(c.lift_verify_failures);
  w->Key("fallback_policies").Int(c.fallback_policies);
  w->Key("cache_hits").Int(c.cache_hits);
  w->Key("cache_misses").Int(c.cache_misses);
  w->Key("partition_seconds").Double(c.partition_seconds);
  w->Key("quotient_seconds").Double(c.quotient_seconds);
  w->Key("solve_seconds").Double(c.solve_seconds);
  w->Key("lift_seconds").Double(c.lift_seconds);
  w->EndObject();
}

// Incremental re-repair telemetry (DESIGN.md §12). attempted is false unless
// the pipeline was built with Cpr::FromBaseline; check.sh asserts
// groups_reused > 0 on its one-router-edit smoke.
void WriteIncremental(obs::JsonWriter* w, const CprReport& report) {
  const incremental::IncrementalStats& i = report.incremental;
  w->Key("incremental").BeginObject();
  w->Key("attempted").Bool(i.attempted);
  w->Key("applied").Bool(i.applied);
  w->Key("skipped_reason").String(i.skipped_reason);
  w->Key("devices_changed").Int(i.devices_changed);
  w->Key("everything_dirty").Bool(i.everything_dirty);
  w->Key("harc_cloned").Bool(i.harc_cloned);
  w->Key("dirty_destinations").Int(i.dirty_destinations);
  w->Key("dirty_traffic_classes").Int(i.dirty_traffic_classes);
  w->Key("groups_total").Int(i.groups_total);
  w->Key("groups_reused").Int(i.groups_reused);
  w->Key("groups_resolved").Int(i.groups_resolved);
  w->Key("warm_hits").Int(i.warm_hits);
  w->Key("warm_misses").Int(i.warm_misses);
  w->Key("fell_back").Bool(i.fell_back);
  w->Key("diff_seconds").Double(i.diff_seconds);
  w->Key("clone_seconds").Double(i.clone_seconds);
  w->Key("solve_seconds").Double(i.solve_seconds);
  w->Key("verify_seconds").Double(i.verify_seconds);
  w->EndObject();
}

// The lint section carries its own schema version: the rule catalog evolves
// independently of the surrounding run schema.
void WriteLint(obs::JsonWriter* w, const CprReport& report) {
  w->Key("lint").BeginObject();
  w->Key("schema_version").Int(kLintSchemaVersion);
  w->Key("errors").Int(report.lint_report.errors);
  w->Key("warnings").Int(report.lint_report.warnings);
  w->Key("infos").Int(report.lint_report.infos);
  w->Key("diagnostics");
  WriteDiagnostics(w, report.lint_report.diagnostics);
  w->Key("audit_new_findings");
  WriteDiagnostics(w, report.lint_new_findings);
  w->EndObject();
}

// Certification telemetry (DESIGN.md §13). Carries its own schema version:
// the proof/checker formats evolve independently of the run schema. `mode`
// echoes the request; the counts summarize the independent checker's
// verdicts over the problem reports.
void WriteCertify(obs::JsonWriter* w, const CprReport& report) {
  const RepairStats& stats = report.stats;
  w->Key("certify").BeginObject();
  w->Key("schema_version").Int(kCertifySchemaVersion);
  w->Key("mode").String(report.certify_mode);
  w->Key("checked").Int(stats.certify_checked);
  w->Key("verified").Int(stats.certify_verified);
  w->Key("failed").Int(stats.certify_failed);
  w->Key("artifacts").Int(stats.certify_artifacts);
  w->Key("artifact_dir").String(report.certify_artifact_dir);
  w->EndObject();
}

// Like the lint section, provenance carries its own schema version so `cpr
// explain --json` and --stats-json stay in lockstep (both delegate to
// obs::WriteProvenanceFields).
void WriteProvenance(obs::JsonWriter* w, const CprReport& report) {
  w->Key("provenance").BeginObject();
  w->Key("schema_version").Int(kProvenanceSchemaVersion);
  obs::WriteProvenanceFields(w, report.provenance);
  w->EndObject();
}

}  // namespace

std::string BuildStatsJson(const StatsRunInfo& run, const CprReport* report) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(kStatsSchemaVersion);
  WriteRun(&w, run);
  WriteStages(&w);
  WriteInstruments(&w);
  if (report != nullptr) {
    WriteRepair(&w, *report);
    WriteCompression(&w, *report);
    WriteIncremental(&w, *report);
    WriteCertify(&w, *report);
    WriteLint(&w, *report);
    WriteProvenance(&w, *report);
  }
  w.EndObject();
  return w.str();
}

Status WriteStatsJson(const std::string& path, const std::string& json) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Error("cannot open stats file '" + path + "' for writing");
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), file);
  bool newline_ok = std::fputc('\n', file) != EOF;
  int close_rc = std::fclose(file);
  if (written != json.size() || !newline_ok || close_rc != 0) {
    return Error("short write to stats file '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace cpr
