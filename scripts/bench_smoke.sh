#!/usr/bin/env bash
# Bench smoke: build one representative bench (fig07, the real-datacenter
# repair-time figure), run it at the smallest scale, and verify that it emits
# a machine-readable BENCH_*.json with at least one measurement row. CI uses
# this to catch regressions in the bench harness itself without paying for a
# full paper-scale benchmark run.
#
# Usage: scripts/bench_smoke.sh [output.json]
#   output.json   where to write the bench JSON (default build/BENCH_pr3.json)

set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-build/BENCH_pr3.json}"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -B build -S . >/dev/null
cmake --build build -j "$jobs" --target fig07_realdc_time

echo "== bench smoke: fig07_realdc_time (1 network) =="
CPR_BENCH_NETWORKS=1 CPR_BENCH_JSON="$out" build/bench/fig07_realdc_time

if [[ ! -s "$out" ]]; then
  echo "bench smoke FAILED: $out missing or empty" >&2
  exit 1
fi
for key in '"bench"' '"rows"' '"summary"'; do
  if ! grep -q -- "$key" "$out"; then
    echo "bench smoke FAILED: missing $key in $out" >&2
    exit 1
  fi
done
echo "bench smoke OK: $out ($(wc -c < "$out") bytes)"
