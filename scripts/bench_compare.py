#!/usr/bin/env python3
"""Compare two BENCH_*.json records and fail on regressions.

Usage:
    scripts/bench_compare.py BASELINE.json CURRENT.json
        [--tolerance 0.10] [--timing-tolerance R] [--min-seconds 0.05]

Every bench binary writes a machine-readable record (bench/bench_util.h):

    {"bench": ..., "config": {...}, "rows": [...], "summary": {...}}

This tool diffs the two summaries key by key and exits non-zero when the
current run regressed beyond tolerance:

  * lower-is-better keys (names containing "seconds", "lines", "skipped",
    "failed", "timeout", "cost", "bytes", "orphan"): regression = increase;
  * higher-is-better keys (names containing "equal", "compared", "solved",
    "attributed", "throughput", "per_second", "speedup", "compressed"):
    regression = decrease;
  * other shared numeric keys are reported but never fail the run.

Timing keys ("seconds" in the name) are machine-dependent, so they are only
*enforced* when --timing-tolerance is given (use it when baseline and current
come from the same machine, e.g. an A/B overhead check); otherwise they are
reported informationally. Absolute timing deltas below --min-seconds are
always ignored as noise. Row counts must match exactly: a bench that silently
dropped rows is a harness regression, not a performance one.
"""

import argparse
import json
import sys

LOWER_IS_BETTER = ("seconds", "lines", "skipped", "failed", "timeout", "cost",
                   "bytes", "orphan")
HIGHER_IS_BETTER = ("equal", "compared", "solved", "attributed", "throughput",
                    "per_second", "completed", "speedup", "compressed")


def classify(key):
    lowered = key.lower()
    if any(hint in lowered for hint in LOWER_IS_BETTER):
        return "lower"
    if any(hint in lowered for hint in HIGHER_IS_BETTER):
        return "higher"
    return "info"


def load_summary(path):
    with open(path, encoding="utf-8") as handle:
        record = json.load(handle)
    summary = record.get("summary")
    if not isinstance(summary, dict):
        raise SystemExit(f"{path}: no summary object (not a BENCH_*.json?)")
    return record, summary


def relative_delta(baseline, current):
    if baseline == 0:
        return float("inf") if current != 0 else 0.0
    return (current - baseline) / abs(baseline)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative regression (default 0.10)")
    parser.add_argument("--timing-tolerance", type=float, default=None,
                        help="enforce *_seconds keys at this relative tolerance "
                             "(default: timing is informational only)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore timing deltas below this many seconds "
                             "(default 0.05)")
    args = parser.parse_args()

    base_record, base = load_summary(args.baseline)
    curr_record, curr = load_summary(args.current)

    if base_record.get("bench") != curr_record.get("bench"):
        print(f"FAIL: comparing different benches: "
              f"{base_record.get('bench')!r} vs {curr_record.get('bench')!r}")
        return 1

    failures = []
    base_rows = len(base_record.get("rows", []))
    curr_rows = len(curr_record.get("rows", []))
    if base_rows != curr_rows:
        failures.append(f"row count changed: {base_rows} -> {curr_rows}")

    print(f"bench: {base_record.get('bench')}")
    print(f"{'key':<32} {'baseline':>14} {'current':>14} {'delta':>9}  verdict")
    for key in sorted(set(base) & set(curr)):
        b, c = base[key], curr[key]
        if not (isinstance(b, (int, float)) and isinstance(c, (int, float))):
            continue
        direction = classify(key)
        delta = relative_delta(b, c)
        is_timing = "seconds" in key.lower()
        tolerance = args.tolerance
        enforced = direction != "info"
        if is_timing:
            if args.timing_tolerance is None:
                enforced = False
            else:
                tolerance = args.timing_tolerance
            if abs(c - b) < args.min_seconds:
                enforced = False

        regressed = (direction == "lower" and delta > tolerance) or \
                    (direction == "higher" and delta < -tolerance)
        if enforced and regressed:
            verdict = "REGRESSED"
            failures.append(
                f"{key}: {b} -> {c} ({delta:+.1%}, tolerance {tolerance:.0%})")
        elif regressed:
            verdict = "regressed (not enforced)"
        else:
            verdict = "ok" if direction != "info" else "info"
        print(f"{key:<32} {b:>14.6g} {c:>14.6g} {delta:>+8.1%}  {verdict}")

    for key in sorted(set(base) - set(curr)):
        failures.append(f"summary key disappeared: {key}")
    for key in sorted(set(curr) - set(base)):
        print(f"{key:<32} {'-':>14} {curr[key]!r:>14}            new key")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) vs {args.baseline}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nOK: no regressions beyond {args.tolerance:.0%} vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
