#!/usr/bin/env bash
# Full pre-merge check: build and test the default configuration, smoke-test
# the --stats-json pipeline end to end, then build the ASan+UBSan and TSan
# configurations and run the solver/repair-heavy and concurrency-heavy tests
# under them (the degraded paths exercise worker threads, backend failover,
# and cooperative cancellation — exactly where memory and data-race bugs
# would hide).
#
# Usage: scripts/check.sh [--fast]
#   --fast   skip the sanitizer configurations

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 4)"

echo "== default configuration =="
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  # Warning-clean by policy: .clang-tidy sets WarningsAsErrors '*'.
  find src tools -name '*.cc' -print0 |
    xargs -0 -P "$jobs" -n 4 clang-tidy -p build --quiet
  echo "clang-tidy OK"
elif [[ "${CPR_REQUIRE_CLANG_TIDY:-0}" -eq 1 ]]; then
  # CI sets CPR_REQUIRE_CLANG_TIDY=1: a missing tool must fail loudly, not
  # green-skip the static-analysis stage.
  echo "clang-tidy REQUIRED but not installed (CPR_REQUIRE_CLANG_TIDY=1)" >&2
  exit 1
else
  echo "clang-tidy not installed; stage skipped"
fi

echo "== cpr lint smoke =="
lint_json="$(mktemp /tmp/cpr-lint-XXXXXX.json)"
build/tools/cpr lint examples/data/paper-example --json > "$lint_json"
build/tools/cpr_json_validate "$lint_json"
for key in '"schema_version"' '"files"' '"errors"' '"warnings"' \
           '"parse_errors"' '"diagnostics"'; do
  if ! grep -q -- "$key" "$lint_json"; then
    echo "lint smoke FAILED: missing $key in $lint_json" >&2
    exit 1
  fi
done
if grep -q '"errors":[1-9]' "$lint_json"; then
  echo "lint smoke FAILED: example configurations have lint errors" >&2
  exit 1
fi
rm -f "$lint_json"
echo "lint smoke OK"

echo "== --stats-json end-to-end smoke =="
stats_json="$(mktemp /tmp/cpr-stats-XXXXXX.json)"
trap 'rm -f "$stats_json"' EXIT
repair_log="$(mktemp /tmp/cpr-repair-XXXXXX.log)"
build/tools/cpr repair examples/data/paper-example \
  examples/data/paper-example-boolean.policies \
  --backend internal --stats-json "$stats_json" > "$repair_log"

echo "== post-repair lint audit =="
# The repaired configurations must introduce no new lint findings; the
# pipeline's audit prints its verdict on the repair's stdout.
if ! grep -q 'lint audit: clean' "$repair_log"; then
  echo "lint audit FAILED: repair output did not report a clean audit" >&2
  cat "$repair_log" >&2
  exit 1
fi
rm -f "$repair_log"
echo "lint audit OK"
for key in '"schema_version"' '"stages"' '"counters"' '"gauges"' \
           '"histograms"' '"repair"' '"problems"' '"solve_wall_seconds"' \
           '"cdcl.decisions"' '"cdcl.heap_picks"' '"lint"' \
           '"lint_errors"' '"audit_new_findings"'; do
  if ! grep -q -- "$key" "$stats_json"; then
    echo "stats smoke FAILED: missing $key in $stats_json" >&2
    exit 1
  fi
done
echo "stats smoke OK ($(wc -c < "$stats_json") bytes)"

echo "== cpr explain smoke =="
explain_json="$(mktemp /tmp/cpr-explain-XXXXXX.json)"
build/tools/cpr explain examples/data/paper-example \
  examples/data/paper-example-boolean.policies \
  --backend internal --json > "$explain_json"
build/tools/cpr_json_validate "$explain_json"
for key in '"schema_version"' '"edits_total"' '"edits_attributed"' \
           '"chains"' '"unsat_cores"'; do
  if ! grep -q -- "$key" "$explain_json"; then
    echo "explain smoke FAILED: missing $key in $explain_json" >&2
    exit 1
  fi
done
# Every emitted edit must carry a provenance chain: orphans mean a construct
# key mismatch between the encoder and the edit decoder.
if ! grep -q '"orphan_edits":\[\]' "$explain_json"; then
  echo "explain smoke FAILED: orphan edits in $explain_json" >&2
  exit 1
fi
rm -f "$explain_json"
echo "explain smoke OK"

echo "== certify smoke (repair with proofs, then audit offline) =="
certify_dir="$(mktemp -d /tmp/cpr-certify-XXXXXX)"
certify_stats="$certify_dir/stats.json"
build/tools/cpr repair examples/data/paper-example \
  examples/data/paper-example-boolean.policies \
  --backend internal --certify on --certify-dir "$certify_dir/artifacts" \
  --stats-json "$certify_stats" > "$certify_dir/repair.log"
build/tools/cpr_json_validate "$certify_stats"
grep -q 'certify (on): .* 0 failed' "$certify_dir/repair.log" || {
  echo "certify smoke FAILED: inline check reported failures" >&2
  cat "$certify_dir/repair.log" >&2
  exit 1
}
python3 - "$certify_stats" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))["certify"]
assert s["checked"] > 0 and s["verified"] == s["checked"], s
assert s["failed"] == 0, s
assert s["artifacts"] > 0, s
EOF
# Every persisted proof artifact must be well-formed JSON and must re-verify
# offline, solver long gone — that is the whole point of the subsystem.
for artifact in "$certify_dir"/artifacts/*.cert.json; do
  build/tools/cpr_json_validate "$artifact"
done
build/tools/cpr certify "$certify_dir/artifacts" | grep -q ', 0 failed'
rm -rf "$certify_dir"
echo "certify smoke OK"

echo "== --trace-out smoke =="
trace_json="$(mktemp /tmp/cpr-trace-XXXXXX.json)"
build/tools/cpr repair examples/data/paper-example \
  examples/data/paper-example-boolean.policies \
  --backend internal --trace-out "$trace_json" >/dev/null
build/tools/cpr_json_validate "$trace_json"
for key in '"traceEvents"' '"ph":"X"' '"pipeline.' '"repair.' 'thread_name'; do
  if ! grep -q -- "$key" "$trace_json"; then
    echo "trace smoke FAILED: missing $key in $trace_json" >&2
    exit 1
  fi
done
rm -f "$trace_json"
echo "trace smoke OK"

echo "== compression smoke (symmetric compresses, asymmetric declines) =="
comp_dir="$(mktemp -d /tmp/cpr-compress-XXXXXX)"
comp_json="$comp_dir/stats.json"
build/tools/cpr gen "$comp_dir/sym" --fattree 4 --broken --pc pc1 --policies 4 \
  --policy-out "$comp_dir/sym.policies" --seed 7 >/dev/null
build/tools/cpr repair "$comp_dir/sym" "$comp_dir/sym.policies" \
  --backend internal --compress auto --no-simulate \
  --stats-json "$comp_json" >/dev/null
python3 - "$comp_json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))["compression"]
assert s["attempted"] and s["applied"], s
assert s["quotient_ratio"] > 1.0, s
assert s["lift_verify_failures"] == 0, s
EOF
# Fully asymmetric input must decline with the clean-fallback signature:
# nothing applied and a no-op ratio. The ratio is a float that travels
# through JSON formatting, so compare with a tolerance, never exact equality.
build/tools/cpr gen "$comp_dir/asym" --fattree 4 --broken --pc pc1 --policies 4 \
  --policy-out "$comp_dir/asym.policies" --seed 7 --dirty-asym 20 >/dev/null
build/tools/cpr repair "$comp_dir/asym" "$comp_dir/asym.policies" \
  --backend internal --compress auto --no-simulate \
  --stats-json "$comp_json" >/dev/null
python3 - "$comp_json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))["compression"]
assert s["attempted"] and not s["applied"], s
assert abs(s["quotient_ratio"] - 1.0) < 1e-9, s
EOF
rm -rf "$comp_dir"
echo "compression smoke OK"

echo "== incremental re-repair smoke (edit one router, reuse the rest) =="
incr_dir="$(mktemp -d /tmp/cpr-incr-XXXXXX)"
build/tools/cpr gen "$incr_dir/base" --fattree 4 --broken --pc pc1 --policies 4 \
  --policy-out "$incr_dir/policies" --seed 7 >/dev/null
build/tools/cpr repair "$incr_dir/base" "$incr_dir/policies" \
  --backend internal --no-simulate --out "$incr_dir/repaired" >/dev/null
# One-router edit: revert a single repaired ACL deny, re-breaking one
# traffic class. The incremental run against the repaired baseline must
# reuse every clean group and finish sound without the full-repair fallback.
cp -r "$incr_dir/repaired" "$incr_dir/edited"
python3 - "$incr_dir/edited" <<'EOF'
import pathlib, sys
for path in sorted(pathlib.Path(sys.argv[1]).glob("*.cfg")):
    text = path.read_text()
    if "access-group" not in text:
        continue
    lines = text.splitlines(keepends=True)
    for i, line in enumerate(lines):
        if line.startswith(" deny ip 10."):
            del lines[i]
            path.write_text("".join(lines))
            sys.exit(0)
sys.exit("no repaired ACL deny found to revert")
EOF
incr_json="$incr_dir/stats.json"
build/tools/cpr repair "$incr_dir/edited" "$incr_dir/policies" \
  --backend internal --no-simulate --incremental --baseline "$incr_dir/repaired" \
  --stats-json "$incr_json" >/dev/null
python3 - "$incr_json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))["incremental"]
assert s["attempted"] and s["applied"], s
assert s["harc_cloned"], s
assert s["groups_reused"] > 0, s
assert not s["fell_back"], s
EOF
rm -rf "$incr_dir"
echo "incremental smoke OK"

echo "== cprd daemon smoke (submit, drain, restart, recover) =="
cprd_dir="$(mktemp -d /tmp/cpr-cprd-XXXXXX)"
sock="$cprd_dir/sock"
start_cprd() {
  build/tools/cprd serve --socket "$sock" --checkpoint-dir "$cprd_dir/ckpt" \
    --workers 1 --solve-threads 2 --results-dir "$cprd_dir/results" \
    --event-log "$cprd_dir/events.jsonl" \
    >> "$cprd_dir/daemon.log" 2>&1 &
  cprd_pid=$!
  for _ in $(seq 50); do [[ -S "$sock" ]] && return 0; sleep 0.1; done
  echo "cprd smoke FAILED: daemon never opened $sock" >&2
  cat "$cprd_dir/daemon.log" >&2
  exit 1
}
start_cprd
build/tools/cprd ping --socket "$sock" | grep -q 'ok=1'
# Request 1 runs the full pipeline through the daemon.
build/tools/cprd submit --socket "$sock" examples/data/paper-example \
  examples/data/paper-example-boolean.policies --backend internal \
  --tag smoke --wait 60 | tail -1 | grep -q 'status=success'
# Telemetry (DESIGN.md §14): a real scrape of the live daemon must be
# Prometheus-parseable and must cover both the serve-layer instruments and
# the pipeline instruments merged at request completion; the live flight
# dump must pass the validator's --flight schema.
build/tools/cprd scrape --socket "$sock" > "$cprd_dir/scrape.txt"
grep -q 'cpr_serve_admitted_total{subsystem="serve"} ' "$cprd_dir/scrape.txt"
grep -q 'cpr_repair_problems_solved_total{subsystem="repair"} ' \
  "$cprd_dir/scrape.txt"
python3 - "$cprd_dir/scrape.txt" <<'EOF'
import re, sys
sample = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})?'
    r' -?[0-9][0-9eE+.\-]*$')
lines = [l.rstrip("\n") for l in open(sys.argv[1]) if l.strip()]
assert lines, "empty scrape"
for line in lines:
    ok = line.startswith("# HELP ") or line.startswith("# TYPE ") \
        or sample.match(line)
    assert ok, f"unparseable exposition line: {line!r}"
EOF
build/tools/cprd top --socket "$sock" | grep -q 'serve'
build/tools/cprd dump --socket "$sock" | build/tools/cpr_json_validate --flight
# Request 2 is slow (injected) and request 3 queues behind it (1 worker).
# SIGTERM mid-flight: the daemon must finish #2 within the drain deadline
# and checkpoint #3 for the next daemon.
build/tools/cprd submit --socket "$sock" examples/data/paper-example \
  examples/data/paper-example-boolean.policies --backend internal \
  --tag slow --inject-fault 'slow:p=1:slow=1.5:seed=1' | grep -q 'admitted=1 id=2'
build/tools/cprd submit --socket "$sock" examples/data/paper-example \
  examples/data/paper-example-boolean.policies --backend internal \
  --tag queued | grep -q 'admitted=1 id=3'
kill -TERM "$cprd_pid"
wait "$cprd_pid"
# The restarted daemon recovers exactly the unfinished request (#3) and
# completes it; #1 and #2 finished and must never re-run.
start_cprd
build/tools/cprd stats --socket "$sock" | grep -q ' recovered=1'
build/tools/cprd wait --socket "$sock" --id 3 --timeout 60 | grep -q 'state=done'
build/tools/cprd drain --socket "$sock" | grep -q 'draining=1'
wait "$cprd_pid"
# A third daemon finds a clean slate: completed work is never recovered.
start_cprd
build/tools/cprd stats --socket "$sock" | grep -q ' recovered=0'
build/tools/cprd drain --socket "$sock" >/dev/null
wait "$cprd_pid"
# Every daemon instance appended traced request lifecycles to the shared
# event log, and the final SIGTERM drain left a durable flight dump behind;
# both must validate against their schemas.
build/tools/cpr_json_validate --events "$cprd_dir/events.jsonl"
build/tools/cpr_json_validate --flight "$cprd_dir/ckpt/flightrec.json"
rm -rf "$cprd_dir"
echo "cprd smoke OK"

echo "== cprd loadgen vs committed baseline =="
cprd_bench_json="$(mktemp /tmp/cpr-cprd-bench-XXXXXX.json)"
CPR_BENCH_JSON="$cprd_bench_json" build/bench/cprd_throughput >/dev/null
# Throughput on shared CI machines is noisy; the committed baseline is
# conservative and the tolerance loose — this catches collapses, not jitter.
python3 scripts/bench_compare.py \
  bench/baselines/BENCH_cprd_throughput.json "$cprd_bench_json" --tolerance 0.5
rm -f "$cprd_bench_json"
echo "cprd loadgen OK"

echo "== bench compare (trajectory vs committed baseline) =="
bench_json="$(mktemp /tmp/cpr-bench-XXXXXX.json)"
scripts/bench_smoke.sh "$bench_json" >/dev/null
python3 scripts/bench_compare.py \
  bench/baselines/BENCH_fig07_realdc_time.json "$bench_json"
rm -f "$bench_json"
echo "bench compare OK"

echo "== fig08c compression ablation vs committed smoke baseline =="
cmake --build build -j "$jobs" --target fig08c_network_size >/dev/null
fig08c_json="$(mktemp /tmp/cpr-fig08c-XXXXXX.json)"
CPR_BENCH_FT_MAX_PORTS=6 CPR_BENCH_JSON="$fig08c_json" \
  build/bench/fig08c_network_size >/dev/null
# Speedup is a same-machine A/B ratio but still noisy on shared CI; the
# loose tolerance catches the compression pre-pass collapsing (speedup -> 1,
# lift failures > 0), not jitter.
python3 scripts/bench_compare.py \
  bench/baselines/BENCH_fig08c_smoke.json "$fig08c_json" --tolerance 0.5
rm -f "$fig08c_json"
echo "fig08c ablation OK"

echo "== certify overhead vs committed baseline =="
cmake --build build -j "$jobs" --target certify_overhead >/dev/null
certify_bench_json="$(mktemp /tmp/cpr-certify-bench-XXXXXX.json)"
# The binary gates itself: proof-logging overhead must stay <= 1.10x plain
# and every inline-checked certificate must verify. The baseline compare
# additionally catches the logging or inline-check cost ratios regressing
# against the committed numbers (cost keys are lower-is-better).
CPR_BENCH_JSON="$certify_bench_json" build/bench/certify_overhead >/dev/null
python3 scripts/bench_compare.py \
  bench/baselines/BENCH_certify_overhead.json "$certify_bench_json"
rm -f "$certify_bench_json"
echo "certify overhead OK"

echo "== incremental re-repair vs committed baseline =="
cmake --build build -j "$jobs" --target incremental_rerepair >/dev/null
incr_bench_json="$(mktemp /tmp/cpr-incr-bench-XXXXXX.json)"
CPR_BENCH_JSON="$incr_bench_json" build/bench/incremental_rerepair >/dev/null
# The gate is the edit-replay speedup and verdict parity: with a 0.5
# tolerance the committed ~5.6x must stay above ~2.8x, which catches the
# incremental engine silently degrading to the full pipeline (speedup -> 1)
# or diverging from it (verdicts_equal < edits_replayed), not CI jitter.
python3 scripts/bench_compare.py \
  bench/baselines/BENCH_incremental_rerepair.json "$incr_bench_json" --tolerance 0.5
rm -f "$incr_bench_json"
echo "incremental re-repair OK"

echo "== telemetry overhead vs committed baseline =="
cmake --build build -j "$jobs" --target telemetry_overhead >/dev/null
telemetry_bench_json="$(mktemp /tmp/cpr-telemetry-bench-XXXXXX.json)"
# The binary self-gates the issue contract (best-of-rounds ratio <= 1.05x,
# ON side must actually log events, zero failed requests); the baseline
# compare is a looser trend check that additionally catches failed_requests
# going nonzero without duplicating the absolute gate on a noisy CI box.
CPR_BENCH_JSON="$telemetry_bench_json" build/bench/telemetry_overhead >/dev/null
python3 scripts/bench_compare.py \
  bench/baselines/BENCH_telemetry_overhead.json "$telemetry_bench_json" \
  --tolerance 0.5
rm -f "$telemetry_bench_json"
echo "telemetry overhead OK"

if [[ "$fast" -eq 1 ]]; then
  echo "== sanitizer configurations skipped (--fast) =="
  exit 0
fi

echo "== ASan+UBSan configuration =="
cmake -B build-asan -S . -DCPR_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$jobs"
# Leak detection is off: Z3 keeps global state alive at exit.
ASAN_OPTIONS=detect_leaks=0 ctest --test-dir build-asan --output-on-failure \
  -j "$jobs" -R 'Robust|Repair|Workload|Solver|Smt|Sat|MaxSat|Failover|FaultInjection|Backend|Obs|Counter|Gauge|Histogram|Registry|Span|Json|Daemon|Checkpoint|SnapshotCache|Wire|Compress|Incremental|DirtySet|PrepareHarc|WarmBackend|Session|Certify|Rup|ProofLog|Artifact|Expose|EventLog|FlightRecorder|TraceId'

echo "== TSan configuration =="
cmake -B build-tsan -S . -DCPR_TSAN=ON >/dev/null
cmake --build build-tsan -j "$jobs" --target obs_test repair_test serve_test \
  compress_test incremental_test certify_test telemetry_test
# The observability layer is lock-free on the hot path; TSan validates the
# atomics, the repair tests validate the worker pool that feeds them, the
# serve tests validate the daemon (workers + shared solve pool + drain), the
# telemetry tests validate the event-log/flight-recorder concurrent writers
# and scrape-mid-burst exposition, the
# incremental tests validate warm re-solves sharing that worker pool, and the
# certify tests validate the checking wrapper running on those same workers.
# The certify tests drive Z3 directly; uninstrumented libz3 needs the
# scoped suppression in scripts/tsan.supp (our code stays fully checked).
TSAN_OPTIONS="halt_on_error=1:suppressions=$PWD/scripts/tsan.supp" \
  ctest --test-dir build-tsan --output-on-failure \
  -j "$jobs" -R 'Counter|Gauge|Histogram|Registry|Span|Json|Repair|Daemon|Checkpoint|SnapshotCache|Wire|Compress|Incremental|DirtySet|PrepareHarc|WarmBackend|Session|Certify|Rup|ProofLog|Artifact|Expose|EventLog|FlightRecorder|TraceId'

echo "== all checks passed =="
