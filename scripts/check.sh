#!/usr/bin/env bash
# Full pre-merge check: build and test the default configuration, then build
# the ASan+UBSan configuration and run the solver/repair-heavy tests under
# it (the degraded paths exercise worker threads, backend failover, and
# cooperative cancellation — exactly where memory bugs would hide).
#
# Usage: scripts/check.sh [--fast]
#   --fast   skip the sanitizer configuration

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 4)"

echo "== default configuration =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "$fast" -eq 1 ]]; then
  echo "== sanitizer configuration skipped (--fast) =="
  exit 0
fi

echo "== ASan+UBSan configuration =="
cmake -B build-asan -S . -DCPR_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$jobs"
# Leak detection is off: Z3 keeps global state alive at exit.
ASAN_OPTIONS=detect_leaks=0 ctest --test-dir build-asan --output-on-failure \
  -j "$jobs" -R 'Robust|Repair|Workload|Solver|Smt|Sat|MaxSat|Failover|FaultInjection|Backend'

echo "== all checks passed =="
