// Fat-tree repair at data-center scale (paper §8's synthetic workload).
//
// Generates a 4-port fat-tree (20 OSPF routers) whose core ACLs were
// "inverted" — the always-blocked inter-pod traffic classes lost their
// protection — and lets CPR restore every PC1 policy, comparing the two
// problem granularities along the way.
//
// Build & run:  cmake --build build && ./build/examples/fattree_repair

#include <chrono>
#include <cstdio>

#include "core/cpr.h"
#include "verify/checker.h"
#include "workload/fattree.h"

int main() {
  const int kPorts = 4;
  const int kPolicies = 8;
  cpr::FatTreeScenario scenario =
      cpr::MakeFatTreeScenario(kPorts, cpr::PolicyClass::kAlwaysBlocked, kPolicies, 7);

  std::printf("%d-port fat-tree: %zu routers, %d always-blocked (PC1) policies\n", kPorts,
              scenario.broken_configs.size(), kPolicies);

  cpr::Result<cpr::Cpr> broken =
      cpr::Cpr::FromConfigTexts(scenario.broken_configs, scenario.annotations);
  if (!broken.ok()) {
    std::fprintf(stderr, "load failed: %s\n", broken.error().message().c_str());
    return 1;
  }
  size_t violated = cpr::FindViolations(broken->harc(), scenario.policies).size();
  std::printf("broken snapshot violates %zu/%d policies\n\n", violated, kPolicies);

  for (cpr::Granularity granularity :
       {cpr::Granularity::kAllTcs, cpr::Granularity::kPerDst}) {
    cpr::CprOptions options;
    options.repair.granularity = granularity;
    options.repair.num_threads = 8;
    options.simulator_failure_cap = 1;
    auto start = std::chrono::steady_clock::now();
    cpr::Result<cpr::CprReport> report = broken->Repair(scenario.policies, options);
    double seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                         .count();
    if (!report.ok() || report->status != cpr::RepairStatus::kSuccess) {
      std::fprintf(stderr, "repair failed\n");
      return 1;
    }
    std::printf("%s: %.3fs, %d lines changed, %d problems, sound=%s\n",
                granularity == cpr::Granularity::kAllTcs ? "maxsmt-all-tcs"
                                                         : "maxsmt-per-dst",
                seconds, report->lines_changed, report->stats.problems_formulated,
                report->Sound() ? "yes" : "NO");
    if (granularity == cpr::Granularity::kPerDst) {
      std::printf("\nper-dst patch:\n");
      for (const std::string& change : report->change_log) {
        std::printf("  * %s\n", change.c_str());
      }
    }
  }
  return 0;
}
