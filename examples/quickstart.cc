// Quickstart: repair the paper's running example (§2.2, Figure 2a).
//
// Three routers (A, B, C) run OSPF. Four policies are desired:
//   EP1  traffic from S to U is always blocked
//   EP2  traffic from S to T always traverses a firewall
//   EP3  S can reach T as long as there is at most one link failure
//   EP4  traffic from R to T uses the path A -> B -> C when nothing failed
// The configurations violate EP3. CPR computes a minimal patch, applies it,
// and re-verifies every policy — both on the graph abstraction and on the
// control-plane simulator.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/cpr.h"
#include "verify/checker.h"

namespace {

const char* kConfigA = R"(hostname A
interface Ethernet0/1
 description Link-to-B
 ip address 10.0.1.1/24
interface Ethernet0/2
 description Link-to-C
 ip address 10.0.2.1/24
interface Ethernet0/3
 description Subnet-R
 ip address 10.1.0.1/16
interface Ethernet0/4
 description Subnet-S
 ip address 10.2.0.1/16
router ospf 10
 redistribute connected
 passive-interface Ethernet0/3
 passive-interface Ethernet0/4
 network 10.0.0.0/16 area 0
)";

const char* kConfigB = R"(hostname B
interface Ethernet0/1
 description Link-to-A
 ip address 10.0.1.2/24
 ip access-group BLOCK-U in
interface Ethernet0/2
 description Link-to-C
 ip address 10.0.3.2/24
interface Ethernet0/3
 description Subnet-U
 ip address 10.30.0.1/16
ip access-list extended BLOCK-U
 deny ip any 10.30.0.0/16
 permit ip any any
router ospf 10
 redistribute connected
 passive-interface Ethernet0/3
 network 10.0.0.0/16 area 0
)";

const char* kConfigC = R"(hostname C
interface Ethernet0/1
 description Link-to-A
 ip address 10.0.2.3/24
interface Ethernet0/2
 description Link-to-B
 ip address 10.0.3.3/24
interface Ethernet0/3
 description Subnet-T
 ip address 10.20.0.0/16
router ospf 10
 redistribute connected
 passive-interface Ethernet0/1
 passive-interface Ethernet0/3
 network 10.0.0.0/16 area 0
)";

cpr::SubnetId Subnet(const cpr::Cpr& pipeline, const char* prefix) {
  auto parsed = cpr::Ipv4Prefix::Parse(prefix);
  auto id = pipeline.network().FindSubnet(*parsed);
  if (!id.has_value()) {
    std::fprintf(stderr, "unknown subnet %s\n", prefix);
    std::exit(1);
  }
  return *id;
}

}  // namespace

int main() {
  // 1. Parse the configurations; the firewall on the B-C link is a network
  //    annotation (waypoints are not expressible in router configs).
  cpr::NetworkAnnotations annotations;
  annotations.waypoint_links.insert({"B", "C"});
  cpr::Result<cpr::Cpr> pipeline =
      cpr::Cpr::FromConfigTexts({kConfigA, kConfigB, kConfigC}, annotations);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "failed to load network: %s\n", pipeline.error().message().c_str());
    return 1;
  }

  // 2. State the policies.
  cpr::SubnetId r = Subnet(*pipeline, "10.1.0.0/16");
  cpr::SubnetId s = Subnet(*pipeline, "10.2.0.0/16");
  cpr::SubnetId t = Subnet(*pipeline, "10.20.0.0/16");
  cpr::SubnetId u = Subnet(*pipeline, "10.30.0.0/16");
  std::vector<cpr::Policy> policies = {
      cpr::Policy::AlwaysBlocked(s, u),    // EP1
      cpr::Policy::AlwaysWaypoint(s, t),   // EP2
      cpr::Policy::Reachability(s, t, 2),  // EP3 (violated!)
  };

  std::printf("policies:\n");
  for (const cpr::Policy& policy : policies) {
    bool holds = cpr::VerifyPolicy(pipeline->harc(), policy);
    std::printf("  %-40s %s\n", policy.ToString(pipeline->network()).c_str(),
                holds ? "holds" : "VIOLATED");
  }

  // 3. Repair (per-destination MaxSMT problems, exhaustive simulator check).
  cpr::CprOptions options;
  options.repair.granularity = cpr::Granularity::kPerDst;
  options.simulator_failure_cap = 3;
  cpr::Result<cpr::CprReport> report = pipeline->Repair(policies, options);
  if (!report.ok()) {
    std::fprintf(stderr, "repair error: %s\n", report.error().message().c_str());
    return 1;
  }
  if (report->status != cpr::RepairStatus::kSuccess) {
    std::fprintf(stderr, "repair did not succeed\n");
    return 1;
  }

  // 4. Show the patch.
  std::printf("\nrepair (%d configuration lines changed, %lld construct edits):\n",
              report->lines_changed, static_cast<long long>(report->predicted_cost));
  for (const std::string& change : report->change_log) {
    std::printf("  * %s\n", change.c_str());
  }
  std::printf("\nconfig diff:\n%s", report->diff_text.c_str());

  // 5. The report already re-verified everything on the patched configs.
  std::printf("\nvalidation: %zu residual graph violations, %zu residual simulated "
              "violations -> %s\n",
              report->residual_graph_violations.size(),
              report->residual_simulation_violations.size(),
              report->Sound() ? "repair is sound" : "REPAIR IS UNSOUND");
  (void)r;
  (void)u;
  return report->Sound() ? 0 : 1;
}
