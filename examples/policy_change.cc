// Policy evolution (paper §1): "the same challenges arise when a network
// operator wants to change the policies a network satisfies".
//
// The network is healthy, but the security team newly requires that subnet S
// must not reach subnet T — while R must keep reaching T. A routing-level
// change (tearing down an adjacency) would cut R off too; CPR finds the
// traffic-class-scoped fix (an ACL) automatically.
//
// Build & run:  cmake --build build && ./build/examples/policy_change

#include <cstdio>

#include "core/cpr.h"
#include "simulate/simulator.h"

namespace {

// A small leaf-spine fabric: two leaves, two spines, three host subnets.
const char* kLeaf1 = R"(hostname leaf1
interface eth0
 ip address 10.0.1.1/24
interface eth1
 ip address 10.0.2.1/24
interface eth2
 ip address 10.50.1.1/24
interface eth3
 ip address 10.50.2.1/24
router ospf 1
 redistribute connected
 passive-interface eth2
 passive-interface eth3
 network 10.0.0.0/8 area 0
)";

const char* kLeaf2 = R"(hostname leaf2
interface eth0
 ip address 10.0.3.1/24
interface eth1
 ip address 10.0.4.1/24
interface eth2
 ip address 10.50.3.1/24
router ospf 1
 redistribute connected
 passive-interface eth2
 network 10.0.0.0/8 area 0
)";

const char* kSpine1 = R"(hostname spine1
interface eth0
 ip address 10.0.1.2/24
interface eth1
 ip address 10.0.3.2/24
router ospf 1
 network 10.0.0.0/8 area 0
)";

const char* kSpine2 = R"(hostname spine2
interface eth0
 ip address 10.0.2.2/24
interface eth1
 ip address 10.0.4.2/24
router ospf 1
 network 10.0.0.0/8 area 0
)";

}  // namespace

int main() {
  cpr::Result<cpr::Cpr> pipeline =
      cpr::Cpr::FromConfigTexts({kLeaf1, kLeaf2, kSpine1, kSpine2});
  if (!pipeline.ok()) {
    std::fprintf(stderr, "failed to load network: %s\n", pipeline.error().message().c_str());
    return 1;
  }

  cpr::SubnetId r = *pipeline->network().FindSubnet(*cpr::Ipv4Prefix::Parse("10.50.1.0/24"));
  cpr::SubnetId s = *pipeline->network().FindSubnet(*cpr::Ipv4Prefix::Parse("10.50.2.0/24"));
  cpr::SubnetId t = *pipeline->network().FindSubnet(*cpr::Ipv4Prefix::Parse("10.50.3.0/24"));

  // The new policy set: block S->T, keep everything else fault-tolerant.
  std::vector<cpr::Policy> policies = {
      cpr::Policy::AlwaysBlocked(s, t),
      cpr::Policy::Reachability(r, t, 2),
      cpr::Policy::Reachability(t, r, 2),
      cpr::Policy::Reachability(t, s, 2),
  };

  std::printf("requested policy change: block S->T; R<->T and T->S stay reachable "
              "under any single link failure\n\n");

  cpr::CprOptions options;
  options.simulator_failure_cap = 4;  // Exhaustive on this 4-link fabric.
  cpr::Result<cpr::CprReport> report = pipeline->Repair(policies, options);
  if (!report.ok() || report->status != cpr::RepairStatus::kSuccess) {
    std::fprintf(stderr, "repair failed\n");
    return 1;
  }

  std::printf("computed patch (%d lines):\n%s\n", report->lines_changed,
              report->diff_text.c_str());
  std::printf("traffic classes impacted: %d (the S->T class only)\n",
              report->traffic_classes_impacted);

  // Demonstrate the outcome on the simulator.
  cpr::Result<cpr::Network> patched =
      cpr::Network::Build(report->patched_configs, report->patched_annotations);
  cpr::Simulator simulator(*patched);
  auto show = [&](const char* label, cpr::SubnetId a, cpr::SubnetId b) {
    cpr::ForwardingOutcome out = simulator.Forward(a, b);
    const char* verdict = out.kind == cpr::ForwardingOutcome::Kind::kDelivered
                              ? "delivered"
                              : "blocked/dropped";
    std::printf("  %-8s %s", label, verdict);
    if (out.kind == cpr::ForwardingOutcome::Kind::kDelivered) {
      std::printf(" via");
      for (cpr::DeviceId d : out.path) {
        std::printf(" %s", patched->devices()[static_cast<size_t>(d)].name.c_str());
      }
    }
    std::printf("\n");
  };
  std::printf("\nsimulated forwarding on the patched network:\n");
  show("S->T", s, t);
  show("R->T", r, t);
  show("T->S", t, s);

  return report->Sound() ? 0 : 1;
}
