// Auditing a data-center snapshot pair (paper §8.3's methodology).
//
// Generates one of the synthesized data-center networks — a broken snapshot,
// the operator's hand-written repair of it, and the policies the network is
// supposed to satisfy — then compares CPR's repair of the broken snapshot
// against the operator's on the paper's two metrics: configuration lines
// changed and traffic classes impacted.
//
// Build & run:  cmake --build build && ./build/examples/datacenter_audit [index]

#include <cstdio>
#include <cstdlib>

#include "config/diff.h"
#include "core/cpr.h"
#include "verify/checker.h"
#include "workload/datacenter.h"

int main(int argc, char** argv) {
  int index = argc > 1 ? std::atoi(argv[1]) : 5;
  cpr::DatacenterNetwork network = cpr::GenerateDatacenterNetwork(index, 2017, 0.3);
  std::printf("data center network #%d: %d routers, %d traffic classes, %zu policies\n",
              network.index, network.router_count, network.traffic_class_count,
              network.policies.size());

  cpr::Result<cpr::Cpr> broken =
      cpr::Cpr::FromConfigTexts(network.broken_configs, network.annotations);
  if (!broken.ok()) {
    std::fprintf(stderr, "load failed: %s\n", broken.error().message().c_str());
    return 1;
  }
  std::vector<cpr::Policy> violations =
      cpr::FindViolations(broken->harc(), network.policies);
  std::printf("\nviolations in the broken snapshot (%zu):\n", violations.size());
  for (size_t i = 0; i < violations.size() && i < 8; ++i) {
    std::printf("  %s\n", violations[i].ToString(broken->network()).c_str());
  }
  if (violations.size() > 8) {
    std::printf("  ... and %zu more\n", violations.size() - 8);
  }

  // CPR's repair.
  cpr::CprOptions options;
  options.repair.num_threads = 8;
  options.simulator_failure_cap = 1;
  cpr::Result<cpr::CprReport> report = broken->Repair(network.policies, options);
  if (!report.ok() || report->status != cpr::RepairStatus::kSuccess) {
    std::fprintf(stderr, "repair failed\n");
    return 1;
  }

  // The operator's repair, measured the same way.
  int hand_lines = 0;
  for (size_t i = 0; i < network.broken_configs.size(); ++i) {
    hand_lines += cpr::DiffConfigText(network.broken_configs[i],
                                      network.handfixed_configs[i])
                      .total();
  }

  std::printf("\n%-22s %-12s %-12s\n", "", "CPR", "hand-written");
  std::printf("%-22s %-12d %-12d\n", "lines changed", report->lines_changed, hand_lines);
  std::printf("%-22s %-12d %-12s\n", "tc impacted", report->traffic_classes_impacted,
              "(see fig11 bench)");
  std::printf("%-22s %-12s %-12s\n", "restores policies",
              report->Sound() ? "yes" : "NO", "yes (by construction)");

  std::printf("\nCPR's patch:\n%s", report->diff_text.c_str());
  return 0;
}
